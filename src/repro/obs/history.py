"""Cross-run telemetry ledger and statistical regression sentinel.

Every ``RUN_REPORT.json`` / ``BENCH_sim.json`` emission is a point
sample: the moment the process exits, its timings and ratios have no
history to stand against.  This module gives the repo a memory — an
**append-only, content-addressed run ledger** (one compact JSONL
record per run) that :func:`repro.obs.report.write_run_report` feeds
automatically, plus a **regression sentinel** that replaces hand-tuned
fixed bench floors with a robust rolling baseline (median/MAD over the
last N *matching* records).

Ledger records (schema ``repro.obs.history/v1``)::

    {
      "schema": "repro.obs.history/v1",
      "id": "9f2c4e...",            # sha-256 of the canonical record
      "ts": "2026-08-08T12:00:00+00:00",
      "kind": "run_report" | "bench" | "campaign" | ...,
      "command": ["table7"],
      "fingerprint": {               # environment identity (shared with
        "cpu_count": 4,              # RUN_REPORT v3's block)
        "platform": "Linux-...",
        "machine": "x86_64",
        "python": "3.12.3",
        "git_sha": "dfdb525..."      # best-effort, may be ""
      },
      "series": {"wall_seconds": 1.2, "bench.cosim.p1_8_2.speedup": 9.1,
                 "metric.faults.per_second.mean": 812.0, ...}
    }

Design points:

* **Atomic appends** — each record is one ``\\n``-terminated line
  written with a single ``os.write`` on an ``O_APPEND`` descriptor, so
  concurrent writers (e.g. :mod:`repro.exec` pool workers) interleave
  whole records, never torn ones.
* **Content addressing** — ``id`` is the SHA-256 of the canonical
  (sorted-keys, id-less) JSON encoding; identical telemetry hashes to
  the identical id, and ``RUN_REPORT.json`` carries it back as
  ``history_ref``.
* **Corruption tolerance** — a truncated or garbled line (a crashed
  writer, a filesystem hiccup) is skipped with a warning and counted
  (``history.corrupt_records``); reading never crashes.
* **Environment matching** — the sentinel only compares a run against
  baseline records whose :func:`fingerprint_key` matches (cpu count,
  platform, machine, python), so a 1-CPU CI container never gates
  against a multi-core laptop's numbers.
* **Opt-out** — ``REPRO_HISTORY=0`` disables appends entirely;
  ``$REPRO_HISTORY_DIR`` moves the ledger (default
  ``~/.cache/repro/history/``).

The sentinel (:func:`check_latest`, CLI ``python -m repro history
check``) gates each *directional* series (see :func:`series_direction`)
with ``tolerance = max(k * 1.4826 * MAD, rel_floor * |median|)``:
scaled MAD absorbs machine jitter measured from the baseline itself,
and the relative floor keeps near-constant series from tripping on
noise below ``rel_floor``.  Fewer than ``min_baseline`` matching
records is a *cold start*: an informational pass, never a failure.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.metrics import counter as _obs_counter

SCHEMA = "repro.obs.history/v1"

#: Ledger filename inside :func:`history_dir`.
LEDGER_NAME = "ledger.jsonl"

#: Rolling-baseline window (matching records) for the sentinel.
DEFAULT_WINDOW = 20

#: Matching records required before the sentinel gates anything.
MIN_BASELINE = 3

#: MAD multiplier: tolerance covers ±k robust standard deviations.
MAD_K = 4.0

#: Relative tolerance floor — deviations under this fraction of the
#: baseline median never fail, however tight the baseline's jitter.
REL_FLOOR = 0.10

#: Consistency constant making MAD estimate sigma for normal noise.
_MAD_SIGMA = 1.4826

_APPENDS = _obs_counter("history.appends")
_APPEND_ERRORS = _obs_counter("history.append_errors")
_CORRUPT = _obs_counter("history.corrupt_records")


# -- ledger location & switches -------------------------------------------


def history_enabled() -> bool:
    """Whether ledger appends are active (``REPRO_HISTORY``).

    Enabled by default; set ``REPRO_HISTORY=0`` (or empty) to make
    every append a silent no-op.  Read per call so tests can flip it.
    """
    return os.environ.get("REPRO_HISTORY", "1") not in ("", "0")


def history_dir() -> Path:
    """Ledger directory (not created until the first append).

    ``$REPRO_HISTORY_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro/
    history`` or ``~/.cache/repro/history``.
    """
    base = os.environ.get("REPRO_HISTORY_DIR")
    if base:
        return Path(base)
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = (Path(xdg) if xdg else Path.home() / ".cache") / "repro"
    return root / "history"


def ledger_path() -> Path:
    """The append-only JSONL ledger file."""
    return history_dir() / LEDGER_NAME


# -- environment fingerprint ----------------------------------------------


def env_fingerprint() -> dict:
    """Host identity block shared by ledger records and RUN_REPORT v3.

    Deliberately coarse: it must distinguish *machine classes* (a
    1-CPU CI container vs an 8-core laptop, Linux vs Darwin, 3.10 vs
    3.12), not individual boots, so baselines accumulate.
    """
    from repro.obs.report import git_metadata  # cycle-free at call time

    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.system(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "git_sha": git_metadata().get("commit", ""),
    }


def fingerprint_key(fingerprint: dict) -> str:
    """Baseline-matching key for one fingerprint block.

    Excludes ``git_sha`` on purpose — comparing *across* commits is
    the ledger's whole point; only the hardware/interpreter class must
    match.
    """
    return "|".join(
        str(fingerprint.get(k, ""))
        for k in ("cpu_count", "platform", "machine", "python")
    )


# -- record construction ---------------------------------------------------


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def extract_series(report: dict) -> dict:
    """Flatten one run report into the compact ``series`` scalar map.

    Keeps the trends worth charting and gating — wall clock, per-stage
    wall times, cache hit rates, metric scalars and histogram means,
    and (for bench reports) the headline ratio/throughput sections —
    while dropping the per-span detail that makes reports big.
    """
    series: dict[str, float] = {}
    if _is_number(report.get("wall_seconds")):
        series["wall_seconds"] = report["wall_seconds"]
    for stage in report.get("stages", ()):
        if _is_number(stage.get("wall_s")):
            series[f"stage.{stage['name']}.wall_s"] = stage["wall_s"]

    metrics = report.get("metrics", {})
    from repro.obs.metrics import flatten_snapshot

    for name, value in flatten_snapshot(metrics).items():
        series[f"metric.{name}"] = value
    for prefix in ("compile.cache", "exec.cache", "coregen.memo"):
        hits = metrics.get(f"{prefix}_hits", 0)
        misses = metrics.get(f"{prefix}_misses", 0)
        if _is_number(hits) and _is_number(misses) and hits + misses > 0:
            series[f"{prefix}_hit_rate"] = round(hits / (hits + misses), 4)

    # Bench sections (BENCH_sim.json): headline ratios + throughputs.
    for core, result in report.get("cosim", {}).items():
        if _is_number(result.get("speedup")):
            series[f"bench.cosim.{core}.speedup"] = result["speedup"]
    campaign = report.get("fault_campaign_numpy", {})
    for key in ("speedup_vs_interpreted", "speedup_vs_batched"):
        if _is_number(campaign.get(key)):
            series[f"bench.fault_campaign_numpy.{key}"] = campaign[key]
    for backend, result in campaign.items():
        if isinstance(result, dict) and _is_number(result.get("faults_per_s")):
            series[f"bench.fault_campaign_numpy.{backend}.faults_per_s"] = (
                result["faults_per_s"]
            )
    overhead = report.get("obs_overhead", {})
    if _is_number(overhead.get("overhead_pct")):
        series["bench.obs_overhead.overhead_pct"] = overhead["overhead_pct"]
    scaling = report.get("parallel_scaling", {})
    for jobs, entry in scaling.get("jobs", {}).items():
        if _is_number(entry.get("speedup")):
            series[f"bench.parallel_scaling.jobs{jobs}.speedup"] = (
                entry["speedup"]
            )
        if _is_number(entry.get("combined_s")):
            series[f"bench.parallel_scaling.jobs{jobs}.combined_s"] = (
                entry["combined_s"]
            )
    engine = report.get("yield_engine", {})
    if _is_number(engine.get("speedup_vs_scalar")):
        series["bench.yield_engine.speedup_vs_scalar"] = (
            engine["speedup_vs_scalar"]
        )
    for path in ("vectorized", "scalar"):
        entry = engine.get(path, {})
        if _is_number(entry.get("instances_per_s")):
            series[f"bench.yield_engine.{path}.instances_per_s"] = (
                entry["instances_per_s"]
            )

    # Yield campaigns (python -m repro yield --report): headline
    # throughput and the quality-of-result scalars per design.
    for design, campaign in report.get("yield_campaigns", {}).items():
        if _is_number(campaign.get("instances_per_second")):
            series[f"mc.{design}.instances_per_s"] = (
                campaign["instances_per_second"]
            )
        if _is_number(campaign.get("wall_seconds")):
            series[f"mc.{design}.seconds"] = campaign["wall_seconds"]
        if _is_number(campaign.get("functional_yield")):
            series[f"mc.{design}.functional_yield"] = (
                campaign["functional_yield"]
            )
        fmax = campaign.get("fmax_quantiles", {})
        if _is_number(fmax.get("0.05")):
            series[f"mc.{design}.fmax_p05"] = fmax["0.05"]

    # Placements (python -m repro place --report): placement quality
    # per design, gated so HPWL regressions trip the sentinel.
    for design, placed in report.get("placements", {}).items():
        if _is_number(placed.get("hpwl_m")):
            series[f"place.{design}.hpwl_m"] = placed["hpwl_m"]
        if _is_number(placed.get("improvement_pct")):
            series[f"place.{design}.improvement_pct"] = (
                placed["improvement_pct"]
            )
        if _is_number(placed.get("wall_s")):
            series[f"place.{design}.wall_s"] = placed["wall_s"]

    # Bench placement-quality section: greedy-vs-annealed HPWL and the
    # wire-aware PPA overheads per (design, technology).
    for key, entry in report.get("placement_quality", {}).items():
        if not isinstance(entry, dict):
            continue
        if _is_number(entry.get("hpwl_m")):
            series[f"bench.placement_quality.{key}.hpwl_m"] = entry["hpwl_m"]
        if _is_number(entry.get("improvement_pct")):
            series[f"bench.placement_quality.{key}.improvement_pct"] = (
                entry["improvement_pct"]
            )
    return series


def record_id(record: dict) -> str:
    """Content address: SHA-256 of the canonical id-less encoding."""
    canonical = {k: v for k, v in record.items() if k != "id"}
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def build_record(
    kind: str,
    command: Sequence[str],
    series: dict,
    fingerprint: dict | None = None,
    ts: str | None = None,
) -> dict:
    """Assemble one ledger record (id filled in from content)."""
    record = {
        "schema": SCHEMA,
        "ts": ts
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "kind": kind,
        "command": list(command),
        "fingerprint": fingerprint
        if fingerprint is not None
        else env_fingerprint(),
        "series": {k: series[k] for k in sorted(series)},
    }
    record["id"] = record_id(record)
    return record


def record_from_report(report: dict) -> dict:
    """Ledger record for one run report / bench report dict."""
    schema = report.get("schema", "")
    kind = "bench" if schema.endswith("+bench") else "run_report"
    fingerprint = report.get("fingerprint")
    if not isinstance(fingerprint, dict) or "cpu_count" not in fingerprint:
        fingerprint = env_fingerprint()
    return build_record(
        kind,
        report.get("command", ()),
        extract_series(report),
        fingerprint=fingerprint,
        ts=report.get("generated"),
    )


# -- append / read ---------------------------------------------------------


def append_record(record: dict, path=None) -> str | None:
    """Append one record atomically; returns its id (None when off).

    One ``os.write`` of one terminated line on an ``O_APPEND``
    descriptor: concurrent appenders (pool workers, parallel CI jobs
    sharing a cache) interleave whole records.  Any filesystem error
    degrades to a silent no-op — telemetry must never fail the run.
    """
    if not history_enabled():
        return None
    if "id" not in record:
        record = {**record, "id": record_id(record)}
    target = Path(path) if path is not None else ledger_path()
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            str(target), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
    except OSError:
        _APPEND_ERRORS.inc()
        return None
    _APPENDS.inc()
    from repro.obs import live as _live

    if _live.ACTIVE is not None:
        _live.publish(
            "ledger",
            {
                "id": record["id"],
                "kind": record.get("kind"),
                "command": record.get("command", []),
                "series_count": len(record.get("series", {})),
            },
        )
    return record["id"]


def record_report(report: dict, path=None) -> str | None:
    """Build + append a record for ``report``; id or None when off."""
    if not history_enabled():
        return None
    return append_record(record_from_report(report), path=path)


def read_ledger(path=None) -> list[dict]:
    """Every parseable record, oldest first; corruption skips + warns.

    A truncated final line (crashed writer) or a garbled middle line
    is counted in ``history.corrupt_records`` and reported once per
    read on stderr; the surviving records always come back.
    """
    target = Path(path) if path is not None else ledger_path()
    try:
        text = target.read_text()
    except OSError:
        return []
    records: list[dict] = []
    skipped = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if not isinstance(record, dict) or "series" not in record:
            skipped += 1
            continue
        records.append(record)
    if skipped:
        _CORRUPT.inc(skipped)
        print(
            f"[obs] history: skipped {skipped} corrupt record(s) in {target}",
            file=sys.stderr,
        )
    return records


# -- regression sentinel ---------------------------------------------------


def series_direction(name: str) -> str | None:
    """Gating direction for one series name, or None (informational).

    ``"higher"`` — throughput/ratio series where a drop is a
    regression; ``"lower"`` — cost series where a rise is.  Everything
    else (counts, coverage snapshots) is tracked but never gated.
    """
    if name.endswith(
        (".speedup", ".faults_per_s", "_hit_rate", ".per_second.mean",
         ".instances_per_s", ".improvement_pct")
    ) or name.rsplit(".", 1)[-1].startswith("speedup_vs_"):
        return "higher"
    if name.endswith(
        ("wall_seconds", ".wall_s", ".combined_s", ".seconds",
         ".overhead_pct", ".hpwl_m", ".queue_wait_s")
    ):
        return "lower"
    return None


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class SeriesCheck:
    """Verdict for one series of the checked record."""

    name: str
    status: str  # "ok" | "regression" | "no_baseline" | "info"
    value: float
    baseline_n: int = 0
    median: float | None = None
    mad: float | None = None
    tolerance: float | None = None
    direction: str | None = None

    def describe(self) -> str:
        if self.status == "no_baseline":
            return (
                f"{self.name}: {self.value:g} "
                f"(cold start, {self.baseline_n} baseline records)"
            )
        arrow = "<" if self.direction == "higher" else ">"
        return (
            f"{self.name}: {self.value:g} {arrow}? "
            f"median {self.median:g} ± {self.tolerance:g} "
            f"(n={self.baseline_n}, MAD {self.mad:g}) -> {self.status}"
        )


@dataclass
class HistoryCheck:
    """Sentinel result over every gated series of one record."""

    record: dict
    checks: list[SeriesCheck] = field(default_factory=list)

    @property
    def regressions(self) -> list[SeriesCheck]:
        return [c for c in self.checks if c.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"history check: record {self.record.get('id', '?')} "
            f"({' '.join(self.record.get('command', []))}, "
            f"kind={self.record.get('kind', '?')})"
        ]
        gated = [c for c in self.checks if c.status != "info"]
        if not gated:
            lines.append("  no gated series (informational pass)")
        for check in gated:
            marker = "FAIL" if check.status == "regression" else "  ok"
            if check.status == "no_baseline":
                marker = "cold"
            lines.append(f"  [{marker}] {check.describe()}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"history check: {verdict} "
            f"({len(self.regressions)} regression(s), "
            f"{len(gated)} gated series)"
        )
        return "\n".join(lines)


def baseline_for(
    record: dict, records: Iterable[dict], window: int = DEFAULT_WINDOW
) -> list[dict]:
    """The last ``window`` prior records matching ``record``.

    Matching = same kind, same command, same :func:`fingerprint_key`;
    the checked record itself (by id) is excluded so a just-appended
    run never baselines against itself.
    """
    key = fingerprint_key(record.get("fingerprint", {}))
    matches = [
        r
        for r in records
        if r.get("id") != record.get("id")
        and r.get("kind") == record.get("kind")
        and r.get("command") == record.get("command")
        and fingerprint_key(r.get("fingerprint", {})) == key
    ]
    return matches[-window:]


def check_record(
    record: dict,
    baseline: Sequence[dict],
    min_baseline: int = MIN_BASELINE,
    mad_k: float = MAD_K,
    rel_floor: float = REL_FLOOR,
) -> HistoryCheck:
    """Gate every directional series of ``record`` against ``baseline``.

    Robust rule per series: with ``m`` = baseline median and ``s`` =
    ``1.4826 * MAD``, a higher-is-better series regresses when
    ``value < m - max(mad_k*s, rel_floor*|m|)`` (mirrored for
    lower-is-better).  Series with under ``min_baseline`` baseline
    samples report ``no_baseline`` — a cold start is informational.
    """
    result = HistoryCheck(record=record)
    for name, value in sorted(record.get("series", {}).items()):
        direction = series_direction(name)
        if direction is None or not _is_number(value):
            result.checks.append(
                SeriesCheck(name=name, status="info", value=value)
            )
            continue
        samples = [
            r["series"][name]
            for r in baseline
            if _is_number(r.get("series", {}).get(name))
        ]
        if len(samples) < min_baseline:
            result.checks.append(
                SeriesCheck(
                    name=name,
                    status="no_baseline",
                    value=value,
                    baseline_n=len(samples),
                    direction=direction,
                )
            )
            continue
        median = _median(samples)
        mad = _median([abs(v - median) for v in samples])
        tolerance = max(mad_k * _MAD_SIGMA * mad, rel_floor * abs(median))
        if direction == "higher":
            regressed = value < median - tolerance
        else:
            regressed = value > median + tolerance
        result.checks.append(
            SeriesCheck(
                name=name,
                status="regression" if regressed else "ok",
                value=value,
                baseline_n=len(samples),
                median=median,
                mad=mad,
                tolerance=tolerance,
                direction=direction,
            )
        )
    return result


def check_latest(
    records: Sequence[dict] | None = None,
    path=None,
    kind: str | None = None,
    command: Sequence[str] | None = None,
    window: int = DEFAULT_WINDOW,
    **kwargs,
) -> HistoryCheck | None:
    """Sentinel-check the newest (optionally filtered) ledger record.

    ``None`` when the ledger has no matching record at all — distinct
    from a cold-start pass, which needs a record to check.
    """
    if records is None:
        records = read_ledger(path)
    candidates = [
        r
        for r in records
        if (kind is None or r.get("kind") == kind)
        and (command is None or r.get("command") == list(command))
    ]
    if not candidates:
        return None
    latest = candidates[-1]
    baseline = baseline_for(latest, records, window=window)
    return check_record(latest, baseline, **kwargs)
