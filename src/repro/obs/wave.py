"""Value-change-dump (VCD) waveform emission.

A :class:`VcdWriter` serializes sampled signal values into the
IEEE-1364 VCD format that every open-source waveform viewer (GTKWave,
Surfer, the WaveTrace family) reads.  It is a pure formatter: the
design-under-test side -- which nets to probe, when to sample them --
lives in :mod:`repro.netlist.probe`; this module only knows names,
widths, scopes, and values.

Conventions:

* **time unit = one clock cycle.**  The printed cores clock at a few
  Hz to a few kHz, so the dump declares a ``1 us`` timescale purely to
  keep viewers happy; ``#N`` marks the *N*-th simulated cycle.
* **hierarchical scopes** are passed per signal as a tuple of scope
  names (e.g. ``("flags",)``); the writer groups declarations into
  nested ``$scope module`` blocks under one top-level scope named
  after the design.
* **deterministic output**: identifier codes are assigned in
  declaration order and no wall-clock data is embedded unless a
  ``date`` string is supplied, so two runs of the same simulation
  produce byte-identical dumps (asserted by the backend-equivalence
  tests).

Usage::

    writer = VcdWriter("core", timescale="1 us")
    pc = writer.declare("pc", 8, scope=())
    z = writer.declare("Z", 1, scope=("flags",))
    writer.start({pc: 0, z: 0})          # header + $dumpvars
    writer.sample(1, {pc: 1})            # only changed values
    text = writer.render()               # or writer.write(path)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

#: First/last printable characters usable as VCD identifier codes.
_ID_FIRST, _ID_LAST = 33, 126
_ID_RANGE = _ID_LAST - _ID_FIRST + 1


def _id_code(index: int) -> str:
    """Compact printable identifier code for the ``index``-th variable."""
    chars = []
    index += 1
    while index > 0:
        index -= 1
        chars.append(chr(_ID_FIRST + index % _ID_RANGE))
        index //= _ID_RANGE
    return "".join(reversed(chars))


@dataclass(frozen=True)
class VcdVar:
    """One declared VCD variable (returned by :meth:`VcdWriter.declare`)."""

    name: str
    width: int
    scope: tuple[str, ...]
    code: str


def format_value(value: int, width: int, code: str) -> str:
    """One VCD value-change line: scalar ``0!`` or vector ``b1010 !``."""
    if width == 1:
        return f"{value & 1}{code}"
    return f"b{value:0{width}b} {code}"


class VcdWriter:
    """Accumulates declarations and samples, then renders a VCD text.

    Args:
        design: Top-level scope name (usually the netlist name).
        timescale: VCD timescale declaration; one time unit is one
            simulated clock cycle regardless of this label.
        date: Optional ``$date`` contents; omitted when ``None`` so
            dumps are reproducible by default.
    """

    def __init__(
        self,
        design: str,
        timescale: str = "1 us",
        date: str | None = None,
    ) -> None:
        self.design = design
        self.timescale = timescale
        self.date = date
        self._vars: list[VcdVar] = []
        self._lines: list[str] = []
        self._last: dict[str, int] = {}
        self._started = False
        self._time: int | None = None

    # -- declaration ------------------------------------------------------

    def declare(self, name: str, width: int, scope: tuple[str, ...] = ()) -> VcdVar:
        """Register a signal before :meth:`start`; returns its handle."""
        if self._started:
            raise ValueError("cannot declare variables after start()")
        if width < 1:
            raise ValueError(f"variable {name!r} needs a positive width")
        var = VcdVar(name, width, tuple(scope), _id_code(len(self._vars)))
        self._vars.append(var)
        return var

    # -- emission ------------------------------------------------------------

    def _header(self) -> list[str]:
        lines: list[str] = []
        if self.date is not None:
            lines += ["$date", f"    {self.date}", "$end"]
        lines += [
            "$version",
            "    repro.obs.wave (printed-microprocessors reproduction)",
            "$end",
            f"$timescale {self.timescale} $end",
            f"$scope module {self.design} $end",
        ]
        # Group variables by scope path, emitting each nested scope
        # once, in first-declaration order.
        scopes: list[tuple[str, ...]] = []
        for var in self._vars:
            if var.scope not in scopes:
                scopes.append(var.scope)
        for scope in scopes:
            for name in scope:
                lines.append(f"$scope module {name} $end")
            for var in self._vars:
                if var.scope != scope:
                    continue
                suffix = f" [{var.width - 1}:0]" if var.width > 1 else ""
                lines.append(
                    f"$var wire {var.width} {var.code} {var.name}{suffix} $end"
                )
            lines.extend("$upscope $end" for _ in scope)
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        return lines

    def start(self, initial: dict[VcdVar, int], time: int = 0) -> None:
        """Emit the header and ``$dumpvars`` block with initial values."""
        if self._started:
            raise ValueError("start() called twice")
        missing = [v.name for v in self._vars if v not in initial]
        if missing:
            raise ValueError(f"missing initial values for {missing}")
        self._started = True
        self._lines = self._header()
        self._lines.append(f"#{time}")
        self._lines.append("$dumpvars")
        for var in self._vars:
            value = initial[var]
            self._last[var.code] = value
            self._lines.append(format_value(value, var.width, var.code))
        self._lines.append("$end")
        self._time = time

    def sample(self, time: int, values: dict[VcdVar, int]) -> int:
        """Record changed values at ``time``; returns the change count.

        Unchanged values are elided (standard VCD delta encoding) and
        a timestamp is only emitted when at least one value changed.
        """
        if not self._started:
            raise ValueError("sample() before start()")
        if self._time is not None and time <= self._time:
            raise ValueError(f"time {time} is not after {self._time}")
        changes = [
            (var, value)
            for var, value in values.items()
            if self._last.get(var.code) != value
        ]
        if not changes:
            return 0
        self._lines.append(f"#{time}")
        for var, value in changes:
            self._last[var.code] = value
            self._lines.append(format_value(value, var.width, var.code))
        self._time = time
        return len(changes)

    # -- output ------------------------------------------------------------

    def render(self) -> str:
        """The complete dump as one string (header emitted lazily)."""
        lines = self._lines if self._started else self._header()
        return "\n".join(lines) + "\n"

    def write(self, path) -> Path:
        """Serialize the dump to ``path``; returns the written path.

        Missing parent directories are created (CLI runs point this
        at artifact directories that may not exist yet).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path
