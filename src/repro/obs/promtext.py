"""Prometheus text exposition of the :mod:`repro.obs.metrics` registry.

``GET /metrics`` on the serve endpoint renders the whole process-wide
registry in the Prometheus text format (version 0.0.4) so any standard
scraper can poll a long-running ``python -m repro serve`` instance:

* every metric is exported under the ``repro_`` prefix with its dotted
  name sanitized to the Prometheus grammar (``serve.jobs.completed``
  -> ``repro_serve_jobs_completed``; any character outside
  ``[a-zA-Z0-9_:]`` becomes ``_``, and a leading digit gains a ``_``);
* :class:`~repro.obs.metrics.Counter` -> ``counter``,
  :class:`~repro.obs.metrics.Gauge` -> ``gauge``;
* :class:`~repro.obs.metrics.Histogram` (count/sum/min/max, no
  buckets) -> a ``summary`` family (``_count`` + ``_sum`` samples,
  which is exactly what a quantile-less summary is allowed to carry)
  plus two companion gauges ``<name>_min`` / ``<name>_max`` when at
  least one sample was observed.

The output is deterministic (sorted by exported family name) and
round-trips through the strict parser in
``tests/obs/test_promtext.py``.
"""

from __future__ import annotations

import re

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)

#: Prefix applied to every exported metric family.
PREFIX = "repro_"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str, prefix: str = PREFIX) -> str:
    """Map a dotted registry name onto the Prometheus name grammar."""
    flat = _INVALID.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return prefix + flat


def _format_value(value) -> str:
    """One deterministic sample encoding (ints stay integral)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The whole registry as Prometheus text exposition format.

    Families are emitted sorted by exported name; a metric that was
    never touched still appears (counters/gauges at 0, histograms with
    ``_count 0`` / ``_sum 0``) so scrapes see stable series sets.
    """
    registry = registry if registry is not None else REGISTRY
    families: list[tuple[str, list[str]]] = []
    for name, metric in registry.metrics().items():
        exported = sanitize_name(name)
        lines = [
            f"# HELP {exported} {_escape_help(f'repro metric {name}')}",
        ]
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {exported} counter")
            lines.append(f"{exported} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {exported} gauge")
            lines.append(f"{exported} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            summary = metric.summary()
            lines.append(f"# TYPE {exported} summary")
            lines.append(f"{exported}_count {_format_value(summary['count'])}")
            lines.append(f"{exported}_sum {_format_value(summary['sum'])}")
            if summary["count"]:
                for bound in ("min", "max"):
                    companion = f"{exported}_{bound}"
                    lines.append(
                        f"# HELP {companion} "
                        f"{_escape_help(f'repro metric {name} ({bound})')}"
                    )
                    lines.append(f"# TYPE {companion} gauge")
                    lines.append(
                        f"{companion} {_format_value(summary[bound])}"
                    )
        else:  # pragma: no cover - registry only holds the three kinds
            continue
        families.append((exported, lines))
    out: list[str] = []
    for _, lines in sorted(families):
        out.extend(lines)
    return "\n".join(out) + "\n"
