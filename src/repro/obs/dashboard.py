"""Self-contained HTML dashboard over the cross-run telemetry ledger.

``python -m repro dashboard --out dashboard.html`` renders the ledger
(:mod:`repro.obs.history`) into one static HTML file: stat tiles with
inline-SVG trend sparklines for every tracked series (bench ratios,
cache hit rates, campaign faults/sec, suite timings), a per-stage span
breakdown bar chart for the latest run, and a plain table view of the
latest values.  Zero third-party dependencies — no JS framework, no
chart library, no webfonts, no network fetches; tooltips are native
SVG ``<title>`` elements and dark mode is a ``prefers-color-scheme``
variable swap.

The output is **byte-deterministic given a fixed ledger**: no
generation timestamp, stable sort orders everywhere, and one fixed
float format (``%.6g``) — CI can diff two dashboards to diff two
ledgers.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Sequence

from repro.obs import history as _history

#: Sparkline points drawn per series (newest records win).
SPARK_POINTS = 30

#: Sparkline viewbox (px).
_SPARK_W, _SPARK_H = 120, 28

#: Stage-breakdown bar area width (px).
_BAR_W = 220

_CSS = """\
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series: #2a78d6; --trend: #c3c2b7;
  --good: #006300; --bad: #d03b3b;
  --ring: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --series: #3987e5; --trend: #383835;
    --good: #0ca30c; --bad: #e66767;
    --ring: rgba(255,255,255,0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface); border: 1px solid var(--ring);
  border-radius: 8px; padding: 10px 14px 8px; min-width: 180px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 22px; font-weight: 600; }
.tile .delta { font-size: 12px; }
.tile .delta.up { color: var(--good); }
.tile .delta.down { color: var(--bad); }
.tile .delta.flat { color: var(--muted); }
.group { margin: 18px 0 0; }
table { border-collapse: collapse; background: var(--surface); }
th, td {
  text-align: left; padding: 4px 12px; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 600; }
details summary { cursor: pointer; color: var(--ink-2); margin: 10px 0; }
.bars text { fill: var(--ink-2); font-size: 11px; }
.bars .val { fill: var(--ink-2); }
svg .spark-line { stroke: var(--trend); }
svg .spark-dot { fill: var(--series); stroke: var(--surface); }
svg .bar { fill: var(--series); }
svg .axis { stroke: var(--baseline); }
"""

#: Public alias for reuse by other HTML surfaces (the serve status
#: page shares the dashboard's look without re-authoring the CSS).
DASHBOARD_CSS = _CSS


def _fmt(value: float) -> str:
    """One fixed, deterministic number format for the whole page."""
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    return f"{value:.6g}"


def _spark_svg(values: Sequence[float], tooltip: str) -> str:
    """Inline sparkline: trend in the de-emphasis hue, latest in accent."""
    w, h, pad = _SPARK_W, _SPARK_H, 4
    if len(values) < 2:
        return (
            f'<svg width="{w}" height="{h}" role="img">'
            f"<title>{html.escape(tooltip)}</title>"
            f'<circle class="spark-dot" cx="{w - pad}" cy="{h // 2}" '
            f'r="4" stroke-width="2"/></svg>'
        )
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = (w - 2 * pad) / (len(values) - 1)
    points = []
    for i, v in enumerate(values):
        x = pad + i * step
        y = pad + (h - 2 * pad) * (1.0 - (v - lo) / span)
        points.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = points[-1].split(",")
    return (
        f'<svg width="{w}" height="{h}" role="img">'
        f"<title>{html.escape(tooltip)}</title>"
        f'<polyline class="spark-line" fill="none" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round" '
        f'points="{" ".join(points)}"/>'
        f'<circle class="spark-dot" cx="{last_x}" cy="{last_y}" r="4" '
        f'stroke-width="2"/></svg>'
    )


#: Public alias (same reuse rationale as :data:`DASHBOARD_CSS`).
spark_svg = _spark_svg


def _series_values(
    records: Sequence[dict], name: str, limit: int = SPARK_POINTS
) -> list[float]:
    values = [
        r["series"][name]
        for r in records
        if isinstance(r.get("series", {}).get(name), (int, float))
        and not isinstance(r["series"][name], bool)
    ]
    return values[-limit:]


def _delta_class(values: Sequence[float], direction: str | None) -> tuple[str, str]:
    """(css class, signed % text) of latest vs the median of the rest."""
    if len(values) < 2:
        return "flat", "first sample"
    baseline = _history._median(values[:-1])
    if baseline == 0:
        return "flat", "n/a"
    pct = 100.0 * (values[-1] - baseline) / abs(baseline)
    if abs(pct) < 0.05:
        return "flat", "±0% vs median"
    sign = "+" if pct > 0 else "−"
    text = f"{sign}{abs(pct):.1f}% vs median"
    if direction is None or abs(pct) < 1.0:
        return "flat", text
    good = (pct > 0) == (direction == "higher")
    return ("up" if good else "down"), text


def _tile(records: Sequence[dict], name: str) -> str:
    values = _series_values(records, name)
    if not values:
        return ""
    direction = _history.series_direction(name)
    cls, delta = _delta_class(values, direction)
    tooltip = (
        f"{name}: {len(values)} samples, "
        f"min {_fmt(min(values))}, max {_fmt(max(values))}"
    )
    return (
        '<div class="tile">'
        f'<div class="label">{html.escape(name)}</div>'
        f'<div class="value">{_fmt(values[-1])}</div>'
        f"{_spark_svg(values, tooltip)}"
        f'<div class="delta {cls}">{html.escape(delta)}</div>'
        "</div>"
    )


#: (section title, predicate over series names) — fixed render order.
_GROUPS = (
    ("Bench ratios", lambda n: n.startswith("bench.") and n.endswith(".speedup")),
    ("Bench throughput & overhead",
     lambda n: n.startswith("bench.") and not n.endswith(".speedup")),
    ("Cache hit rates", lambda n: n.endswith("_hit_rate")),
    ("Campaign throughput",
     lambda n: n.startswith("metric.faults.") or n.endswith(".faults_per_s")),
    ("Monte-Carlo yield",
     lambda n: n.startswith("mc.") or n.startswith("metric.mc.")),
    ("Worker fan-out health", lambda n: n.startswith("metric.exec.worker")),
    ("Service latency",
     lambda n: n.startswith("serve.") or n.startswith("metric.serve.")),
    ("Suite & stage timings",
     lambda n: n == "wall_seconds" or n.startswith("stage.")),
)


def _stage_bars(record: dict) -> str:
    """Horizontal per-stage wall-time bars for one record."""
    stages = sorted(
        (
            (name[len("stage."):-len(".wall_s")], value)
            for name, value in record.get("series", {}).items()
            if name.startswith("stage.") and name.endswith(".wall_s")
        ),
        key=lambda item: (-item[1], item[0]),
    )
    if not stages:
        return '<p class="sub">latest record has no stage spans</p>'
    top = max(value for _, value in stages) or 1.0
    row_h, bar_h, label_w = 26, 16, 180
    height = row_h * len(stages) + 8
    parts = [
        f'<svg class="bars" width="{label_w + _BAR_W + 90}" '
        f'height="{height}" role="img">'
    ]
    for i, (name, value) in enumerate(stages):
        y = 4 + i * row_h
        width = max(2.0, _BAR_W * value / top)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 4}" '
            f'text-anchor="end">{html.escape(name)}</text>'
            f'<rect class="bar" x="{label_w}" y="{y}" '
            f'width="{width:.1f}" height="{bar_h}" rx="4"/>'
            f'<rect class="bar" x="{label_w}" y="{y}" '
            f'width="{min(width, 4):.1f}" height="{bar_h}"/>'
            f'<text class="val" x="{label_w + width + 6:.1f}" '
            f'y="{y + bar_h - 4}">{_fmt(value)}s</text>'
            f"<title>{html.escape(name)}: {_fmt(value)}s</title>"
        )
    parts.append(
        f'<line class="axis" x1="{label_w}" y1="2" x2="{label_w}" '
        f'y2="{height - 2}" stroke-width="1"/></svg>'
    )
    return "".join(parts)


def _latest_table(record: dict) -> str:
    rows = "".join(
        f"<tr><td>{html.escape(name)}</td><td>{_fmt(value)}</td></tr>"
        for name, value in sorted(record.get("series", {}).items())
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    )
    return (
        "<details><summary>Latest record: all series as a table</summary>"
        "<table><thead><tr><th>Series</th><th>Value</th></tr></thead>"
        f"<tbody>{rows}</tbody></table></details>"
    )


def render_dashboard(records: Sequence[dict], title: str = "repro telemetry") -> str:
    """The full HTML page for one ledger snapshot (deterministic)."""
    records = list(records)
    if not records:
        body = '<p class="sub">The ledger is empty — profiled runs, benches, and campaigns will appear here.</p>'
        latest = {}
    else:
        latest = records[-1]
        names = sorted({
            name
            for r in records
            for name, value in r.get("series", {}).items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        })
        claimed: set[str] = set()
        sections = []
        for group_title, match in _GROUPS:
            members = [n for n in names if n not in claimed and match(n)]
            claimed.update(members)
            tiles = "".join(_tile(records, n) for n in members)
            if tiles:
                sections.append(
                    f'<div class="group"><h2>{html.escape(group_title)}</h2>'
                    f'<div class="tiles">{tiles}</div></div>'
                )
        kinds: dict[str, int] = {}
        fingerprints = set()
        for r in records:
            kinds[r.get("kind", "?")] = kinds.get(r.get("kind", "?"), 0) + 1
            fingerprints.add(
                _history.fingerprint_key(r.get("fingerprint", {}))
            )
        kind_text = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        body = (
            f'<p class="sub">{len(records)} ledger records ({kind_text}) '
            f"across {len(fingerprints)} environment fingerprint(s); "
            f'latest {html.escape(str(latest.get("ts", "?")))} — '
            f'<code>{html.escape(" ".join(latest.get("command", [])))}</code>'
            "</p>"
            + "".join(sections)
            + "<h2>Per-stage span breakdown (latest record)</h2>"
            + _stage_bars(latest)
            + _latest_table(latest)
        )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>\n{_CSS}</style></head>\n"
        f"<body><h1>{html.escape(title)}</h1>\n{body}\n</body></html>\n"
    )


def write_dashboard(
    path, records: Sequence[dict] | None = None, ledger=None
) -> Path:
    """Render the ledger (or ``records``) to ``path``; returns the path."""
    if records is None:
        records = _history.read_ledger(ledger)
    path = Path(path)
    path.write_text(render_dashboard(records))
    return path
