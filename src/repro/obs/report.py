"""Machine-readable run reports (``RUN_REPORT.json``).

One flow invocation -- a table regeneration, a design-space sweep, a
benchmark -- produces one report: per-stage timings aggregated from
the tracer, the full metrics snapshot, detailed spans (so per-design-
point costs survive), and enough environment/git metadata to compare
runs across machines and commits.  ``python -m repro --profile ...``
writes one automatically; harnesses call :func:`build_run_report` /
:func:`write_run_report` directly.

Schema (``repro.obs.run_report/v3``, a strict superset of v2, itself a
strict superset of v1)::

    {
      "schema": "repro.obs.run_report/v3",
      "generated": ISO-8601 UTC timestamp,
      "command": ["table7"],           # what ran
      "wall_seconds": 1.23,            # whole-run wall clock
      "stages": [                      # top-level (depth-0) spans
        {"name": "table7", "count": 1, "wall_s": 1.20, "cpu_s": 1.19}
      ],
      "stage_coverage": 0.97,          # sum(stage wall) / wall_seconds
      "spans": [...],                  # detailed events (capped)
      "span_count": 57,
      "metrics": {"compile.cache_hits": 3, ...},
      "environment": {"python": ..., "platform": ..., "argv": [...]},
      "git": {"commit": ..., "dirty": bool},  # best-effort, may be {}
      "design_profiles": [...],        # v2: profile-design results
      "fingerprint": {                 # v3: env identity shared with
        "cpu_count": 4, "platform": "Linux", "machine": "x86_64",
        "python": "3.12.3", "git_sha": "..."   # the history ledger
      },
      "history_ref": "9f2c4e..."       # v3: ledger record id (absent
                                       # when REPRO_HISTORY=0)
    }

Every v1 key is unchanged; v2 adds ``design_profiles``, a list of
design-under-test profiles (per-module energy attribution plus
per-instruction histograms) as produced by
:func:`repro.apps.profile.profile_design` -- empty for runs that
profiled nothing.  v3 adds ``fingerprint`` (the coarse environment
identity block the cross-run ledger matches baselines on -- see
:mod:`repro.obs.history`) and ``history_ref`` (the content-addressed
id of the ledger record this emission appended).

Serialization is deterministic: :func:`dump_report_json` always sorts
keys, and ``compact=True`` additionally elides the per-span detail and
drops indentation so checked-in reports (``BENCH_sim.json``) diff by
value, not by layout.

The terminal summary renders through
:func:`repro.eval.report.render_table` so profiled runs read like the
regenerated paper tables.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Sequence

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: Detailed span events kept in a report (aggregates always cover all).
MAX_REPORT_SPANS = 5000

SCHEMA = "repro.obs.run_report/v3"


def environment_metadata() -> dict:
    """Interpreter/host facts that make timings comparable."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }


def git_metadata(cwd=None) -> dict:
    """Best-effort ``{commit, dirty}``; empty when git is unavailable."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        if commit.returncode != 0:
            return {}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        return {
            "commit": commit.stdout.strip(),
            "dirty": bool(status.stdout.strip()),
        }
    except (OSError, subprocess.SubprocessError):
        return {}


def build_run_report(
    command: Sequence[str],
    wall_seconds: float,
    tracer: "_trace.Tracer | None" = None,
    registry: "_metrics.MetricsRegistry | None" = None,
    extra: dict | None = None,
    profiles: Sequence[dict] | None = None,
) -> dict:
    """Assemble the run-report dict (see module docstring schema).

    ``profiles`` fills the v2 ``design_profiles`` section with
    design-under-test profiles (``profile-design`` results); it stays
    an empty list for runs that profiled nothing.
    """
    tracer = tracer if tracer is not None else _trace.TRACER
    registry = registry if registry is not None else _metrics.REGISTRY
    events = tracer.events()
    stages = [
        {
            "name": s.name,
            "count": s.count,
            "wall_s": round(s.wall_s, 6),
            "cpu_s": round(s.cpu_s, 6),
        }
        for s in tracer.summaries(depth=0)
    ]
    stage_wall = sum(s["wall_s"] for s in stages)
    spans = [
        {
            "name": e.name,
            "path": e.path,
            "depth": e.depth,
            "start_us": round(e.start_us, 1),
            "wall_s": round(e.wall_s, 6),
            "cpu_s": round(e.cpu_s, 6),
            **({"attrs": e.attrs} if e.attrs else {}),
            **({"error": e.error} if e.error else {}),
        }
        for e in events[:MAX_REPORT_SPANS]
    ]
    report = {
        "schema": SCHEMA,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "command": list(command),
        "wall_seconds": round(wall_seconds, 6),
        "stages": stages,
        "stage_coverage": round(stage_wall / wall_seconds, 4)
        if wall_seconds > 0
        else 0.0,
        "spans": spans,
        "span_count": len(events),
        "metrics": registry.snapshot(),
        "environment": environment_metadata(),
        "git": git_metadata(),
        "design_profiles": list(profiles) if profiles else [],
    }
    from repro.obs import history as _history

    report["fingerprint"] = _history.env_fingerprint()
    if extra:
        report.update(extra)
    return report


def dump_report_json(report: dict, compact: bool = False) -> str:
    """Deterministic JSON encoding for run reports.

    Keys are always sorted so two reports with identical content are
    byte-identical regardless of insertion order.  ``compact=True``
    additionally replaces the per-span detail with an empty list
    (``span_count`` and the stage aggregates still cover every span)
    and uses one-space indentation -- the shape checked-in bench
    baselines use so their diffs are dominated by changed *values*.
    """
    if compact and report.get("spans"):
        report = {**report, "spans": []}
    indent = 1 if compact else 2
    return json.dumps(report, indent=indent, sort_keys=True) + "\n"


def write_run_report(path, report: dict, compact: bool = False) -> Path:
    """Serialize ``report`` to ``path``; feed the cross-run ledger.

    Every emission appends one compact record to the history ledger
    (:mod:`repro.obs.history`) and carries the record id back in the
    report's ``history_ref`` -- unless ``REPRO_HISTORY=0``, in which
    case the key is absent and nothing is written outside ``path``.
    """
    from repro.obs import history as _history
    from repro.obs import live as _live

    record_id = _history.record_report(report)
    if record_id is not None:
        report["history_ref"] = record_id
    path = Path(path)
    path.write_text(dump_report_json(report, compact=compact))
    if _live.ACTIVE is not None:
        _live.publish(
            "report",
            {
                "command": report.get("command", []),
                "wall_seconds": report.get("wall_seconds"),
                "span_count": report.get("span_count"),
                "history_ref": report.get("history_ref"),
                "path": str(path),
            },
        )
    return path


def render_run_report(report: dict) -> str:
    """Terminal summary: stage table plus the non-zero metrics."""
    from repro.eval.report import render_table  # heavy package; lazy

    rows = [
        (
            s["name"],
            s["count"],
            f"{s['wall_s']:.3f}",
            f"{s['cpu_s']:.3f}",
            f"{100 * s['wall_s'] / report['wall_seconds']:.1f}%"
            if report["wall_seconds"]
            else "-",
        )
        for s in report["stages"]
    ]
    rows.append(
        ("(total wall)", "", f"{report['wall_seconds']:.3f}", "",
         f"{100 * report.get('stage_coverage', 0):.1f}% covered")
    )
    out = render_table(
        f"Run report: {' '.join(report['command'])}",
        ("Stage", "Calls", "Wall s", "CPU s", "Share"),
        rows,
    )
    return out + "\n" + render_metrics(report["metrics"])


def render_metrics(snapshot: dict) -> str:
    """Metrics snapshot as a two-column table (zeros elided)."""
    from repro.eval.report import render_table  # heavy package; lazy

    rows = []
    for name, value in snapshot.items():
        if isinstance(value, dict):
            if value.get("count"):
                rows.append(
                    (name,
                     f"n={value['count']} mean={value['mean']:.4g} "
                     f"min={value['min']:.4g} max={value['max']:.4g}")
                )
        elif value:
            rows.append((name, f"{value:g}" if isinstance(value, float) else value))
    if not rows:
        rows.append(("(no metrics recorded)", ""))
    return render_table("Metrics", ("Name", "Value"), rows)
