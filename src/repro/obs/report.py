"""Machine-readable run reports (``RUN_REPORT.json``).

One flow invocation -- a table regeneration, a design-space sweep, a
benchmark -- produces one report: per-stage timings aggregated from
the tracer, the full metrics snapshot, detailed spans (so per-design-
point costs survive), and enough environment/git metadata to compare
runs across machines and commits.  ``python -m repro --profile ...``
writes one automatically; harnesses call :func:`build_run_report` /
:func:`write_run_report` directly.

Schema (``repro.obs.run_report/v2``, a strict superset of v1)::

    {
      "schema": "repro.obs.run_report/v2",
      "generated": ISO-8601 UTC timestamp,
      "command": ["table7"],           # what ran
      "wall_seconds": 1.23,            # whole-run wall clock
      "stages": [                      # top-level (depth-0) spans
        {"name": "table7", "count": 1, "wall_s": 1.20, "cpu_s": 1.19}
      ],
      "stage_coverage": 0.97,          # sum(stage wall) / wall_seconds
      "spans": [...],                  # detailed events (capped)
      "span_count": 57,
      "metrics": {"compile.cache_hits": 3, ...},
      "environment": {"python": ..., "platform": ..., "argv": [...]},
      "git": {"commit": ..., "dirty": bool},  # best-effort, may be {}
      "design_profiles": [...]         # v2: profile-design results
    }

Every v1 key is unchanged; v2 adds ``design_profiles``, a list of
design-under-test profiles (per-module energy attribution plus
per-instruction histograms) as produced by
:func:`repro.apps.profile.profile_design` -- empty for runs that
profiled nothing.

The terminal summary renders through
:func:`repro.eval.report.render_table` so profiled runs read like the
regenerated paper tables.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Sequence

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: Detailed span events kept in a report (aggregates always cover all).
MAX_REPORT_SPANS = 5000

SCHEMA = "repro.obs.run_report/v2"


def environment_metadata() -> dict:
    """Interpreter/host facts that make timings comparable."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }


def git_metadata(cwd=None) -> dict:
    """Best-effort ``{commit, dirty}``; empty when git is unavailable."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        if commit.returncode != 0:
            return {}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        return {
            "commit": commit.stdout.strip(),
            "dirty": bool(status.stdout.strip()),
        }
    except (OSError, subprocess.SubprocessError):
        return {}


def build_run_report(
    command: Sequence[str],
    wall_seconds: float,
    tracer: "_trace.Tracer | None" = None,
    registry: "_metrics.MetricsRegistry | None" = None,
    extra: dict | None = None,
    profiles: Sequence[dict] | None = None,
) -> dict:
    """Assemble the run-report dict (see module docstring schema).

    ``profiles`` fills the v2 ``design_profiles`` section with
    design-under-test profiles (``profile-design`` results); it stays
    an empty list for runs that profiled nothing.
    """
    tracer = tracer if tracer is not None else _trace.TRACER
    registry = registry if registry is not None else _metrics.REGISTRY
    events = tracer.events()
    stages = [
        {
            "name": s.name,
            "count": s.count,
            "wall_s": round(s.wall_s, 6),
            "cpu_s": round(s.cpu_s, 6),
        }
        for s in tracer.summaries(depth=0)
    ]
    stage_wall = sum(s["wall_s"] for s in stages)
    spans = [
        {
            "name": e.name,
            "path": e.path,
            "depth": e.depth,
            "start_us": round(e.start_us, 1),
            "wall_s": round(e.wall_s, 6),
            "cpu_s": round(e.cpu_s, 6),
            **({"attrs": e.attrs} if e.attrs else {}),
            **({"error": e.error} if e.error else {}),
        }
        for e in events[:MAX_REPORT_SPANS]
    ]
    report = {
        "schema": SCHEMA,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "command": list(command),
        "wall_seconds": round(wall_seconds, 6),
        "stages": stages,
        "stage_coverage": round(stage_wall / wall_seconds, 4)
        if wall_seconds > 0
        else 0.0,
        "spans": spans,
        "span_count": len(events),
        "metrics": registry.snapshot(),
        "environment": environment_metadata(),
        "git": git_metadata(),
        "design_profiles": list(profiles) if profiles else [],
    }
    if extra:
        report.update(extra)
    return report


def write_run_report(path, report: dict) -> Path:
    """Serialize ``report`` to ``path`` as indented JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def render_run_report(report: dict) -> str:
    """Terminal summary: stage table plus the non-zero metrics."""
    from repro.eval.report import render_table  # heavy package; lazy

    rows = [
        (
            s["name"],
            s["count"],
            f"{s['wall_s']:.3f}",
            f"{s['cpu_s']:.3f}",
            f"{100 * s['wall_s'] / report['wall_seconds']:.1f}%"
            if report["wall_seconds"]
            else "-",
        )
        for s in report["stages"]
    ]
    rows.append(
        ("(total wall)", "", f"{report['wall_seconds']:.3f}", "",
         f"{100 * report.get('stage_coverage', 0):.1f}% covered")
    )
    out = render_table(
        f"Run report: {' '.join(report['command'])}",
        ("Stage", "Calls", "Wall s", "CPU s", "Share"),
        rows,
    )
    return out + "\n" + render_metrics(report["metrics"])


def render_metrics(snapshot: dict) -> str:
    """Metrics snapshot as a two-column table (zeros elided)."""
    from repro.eval.report import render_table  # heavy package; lazy

    rows = []
    for name, value in snapshot.items():
        if isinstance(value, dict):
            if value.get("count"):
                rows.append(
                    (name,
                     f"n={value['count']} mean={value['mean']:.4g} "
                     f"min={value['min']:.4g} max={value['max']:.4g}")
                )
        elif value:
            rows.append((name, f"{value:g}" if isinstance(value, float) else value))
    if not rows:
        rows.append(("(no metrics recorded)", ""))
    return render_table("Metrics", ("Name", "Value"), rows)
