"""Global on/off switch for the observability layer.

Every instrumentation hook in the flow -- spans, counters, progress
lines -- is guarded by one module-level flag so that a disabled run
pays only an attribute load and a branch per event site.  The flag
lives on a tiny state object (rather than a bare module global) so hot
loops can bind ``STATE`` once and read ``STATE.enabled`` without a
dict lookup through the module namespace on every check.

Enable it one of three ways:

* ``REPRO_TRACE=1`` in the environment (read at import time by
  :mod:`repro.obs`);
* ``python -m repro --profile ...`` on the command line;
* :func:`repro.obs.enable` from code (tests, notebooks).
"""

from __future__ import annotations


class ObsState:
    """Mutable observability switch (see module docstring)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: The process-wide switch; hot paths bind this once at import.
STATE = ObsState()


def enabled() -> bool:
    """Whether tracing/metrics collection is currently on."""
    return STATE.enabled


def enable() -> None:
    """Turn on span recording, metric updates, and progress lines."""
    STATE.enabled = True


def disable() -> None:
    """Turn collection off (already-recorded data is kept)."""
    STATE.enabled = False
