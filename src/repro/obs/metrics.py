"""Process-wide metrics registry: counters, gauges, histograms.

The flow's hot paths publish into named metrics::

    _CYCLES = obs.counter("sim.cycles_simulated")
    ...
    if STATE.enabled:
        _CYCLES.value += 1          # pre-bound, branch-guarded hot path

Three metric kinds, mirroring the usual monitoring vocabulary:

* :class:`Counter` -- monotone event count (cache hits, cycles);
* :class:`Gauge` -- last-written value (working-set size);
* :class:`Histogram` -- running count/sum/min/max/mean of observations
  (faults per second, toggles per readout).  No buckets: the flow
  needs cost attribution, not quantile estimation, and count+sum+range
  stays O(1) per observation.

Metric *objects* are created eagerly (registry access takes a lock
once, at instrumentation-site import or constructor time) and updated
cheaply.  ``inc``/``set``/``observe`` check the global switch
themselves, so cold call sites need no guard of their own; loops that
update per cycle should instead bind the metric once and test
``STATE.enabled`` inline as shown above.  Plain ``int``/``float``
read-modify-writes on a bound attribute are atomic under the CPython
GIL for our single-writer usage; :class:`Histogram` takes a lock since
it updates several fields per observation.

Naming convention (see ``docs/OBSERVABILITY.md``): dotted
``subsystem.quantity_unit`` -- e.g. ``compile.cache_hits``,
``sim.cycles_simulated``, ``faults.per_second``.
"""

from __future__ import annotations

import threading

from repro.obs.runtime import STATE


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (no-op while the obs switch is off)."""
        if STATE.enabled:
            self.value += amount


class Gauge:
    """Last-written instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level (no-op while disabled)."""
        if STATE.enabled:
            self.value = value


class Histogram:
    """Running count / sum / min / max of observed samples."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample (no-op while disabled)."""
        if not STATE.enabled:
            return
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metric instances, created on first access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, kind) -> object:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind(name)
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is {type(metric).__name__}, "
                    f"not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def metrics(self) -> dict[str, object]:
        """Shallow copy of the name -> metric-instance map.

        Unlike :meth:`snapshot` this keeps the metric *objects* (and
        therefore their kinds), which the Prometheus exposition
        (:mod:`repro.obs.promtext`) needs to pick the right family
        type per metric.
        """
        with self._lock:
            return dict(self._metrics)

    def snapshot(self) -> dict:
        """Plain-data view of every metric, sorted by name.

        Counters and gauges map to their value; histograms to a
        ``{count, sum, min, max, mean}`` dict.  The result is
        JSON-serializable (it feeds ``RUN_REPORT.json`` directly).
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: dict = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def export_state(self) -> dict:
        """Typed plain-data dump for shipping across process boundaries.

        Unlike :meth:`snapshot`, the metric *kind* survives -- each
        entry is ``(kind, value)`` with kind in ``{"counter", "gauge",
        "histogram"}`` -- so :meth:`merge_state` on the receiving side
        can fold counters additively, overwrite gauges, and merge
        histogram moments.  Zero-valued metrics are elided: a worker
        that never touched a metric must not create it in the parent.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: dict = {}
        for name, metric in metrics.items():
            if isinstance(metric, Counter):
                if metric.value:
                    out[name] = ("counter", metric.value)
            elif isinstance(metric, Gauge):
                if metric.value:
                    out[name] = ("gauge", metric.value)
            elif metric.count:
                out[name] = ("histogram", metric.summary())
        return out

    def merge_state(self, state: dict) -> None:
        """Fold a worker's :meth:`export_state` into this registry.

        Counters and histogram moments accumulate; gauges take the
        incoming value (last merge wins -- callers merge in a
        deterministic order).  Writes bypass the global obs switch:
        the worker already gated collection, so a shipped value is
        always folded in.
        """
        for name, (kind, value) in state.items():
            if kind == "counter":
                self.counter(name).value += value
            elif kind == "gauge":
                self.gauge(name).value = value
            else:
                histogram = self.histogram(name)
                with histogram._lock:
                    histogram.count += value["count"]
                    histogram.total += value["sum"]
                    if histogram.min is None or value["min"] < histogram.min:
                        histogram.min = value["min"]
                    if histogram.max is None or value["max"] > histogram.max:
                        histogram.max = value["max"]

    def reset(self) -> None:
        """Zero every registered metric (instances stay bound)."""
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Counter):
                    metric.value = 0
                elif isinstance(metric, Gauge):
                    metric.value = 0.0
                else:
                    metric.count = 0
                    metric.total = 0.0
                    metric.min = None
                    metric.max = None


#: The process-wide registry behind :func:`repro.obs.counter` et al.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """The process-wide :class:`Counter` named ``name``."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """The process-wide :class:`Gauge` named ``name``."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """The process-wide :class:`Histogram` named ``name``."""
    return REGISTRY.histogram(name)


def snapshot() -> dict:
    """Plain-data snapshot of the process-wide registry."""
    return REGISTRY.snapshot()


def flatten_snapshot(snapshot: dict) -> dict:
    """Flatten a :meth:`MetricsRegistry.snapshot` to scalars only.

    Counters and gauges pass through under their own name; a histogram
    contributes ``<name>.mean`` and ``<name>.count``.  Zero-valued
    entries are dropped.  This is the shape the cross-run history
    ledger (:mod:`repro.obs.history`) stores, one scalar per series.
    """
    flat: dict = {}
    for name, value in snapshot.items():
        if isinstance(value, dict):
            if value.get("count"):
                flat[f"{name}.mean"] = value["mean"]
                flat[f"{name}.count"] = value["count"]
        elif isinstance(value, (int, float)) and value:
            flat[name] = value
    return flat
