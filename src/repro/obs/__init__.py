"""Pipeline-wide observability: tracing spans, metrics, run reports.

The flow behind every regenerated table -- elaboration, technology
mapping, STA, power, co-simulation, fault campaigns -- is instrumented
with this zero-dependency layer:

* :func:`span` -- nestable timing spans with a thread-safe collector
  and a Chrome-trace-compatible JSONL exporter (:mod:`repro.obs.trace`);
* :func:`counter` / :func:`gauge` / :func:`histogram` -- a metrics
  registry wired into the hot paths (:mod:`repro.obs.metrics`);
* :func:`progress` -- rate/ETA logging for long loops
  (:mod:`repro.obs.progress`);
* :func:`build_run_report` / :func:`write_run_report` -- structured
  ``RUN_REPORT.json`` emission (:mod:`repro.obs.report`);
* :class:`VcdWriter` -- IEEE-1364 value-change-dump waveform emission
  for the gate-level probes (:mod:`repro.obs.wave`);
* the cross-run telemetry ledger and regression sentinel
  (:mod:`repro.obs.history`) every report emission feeds, and the
  self-contained HTML dashboard over it (:mod:`repro.obs.dashboard`).

Everything is off by default and no-op-cheap when off: one branch per
event site (the benchmark suite asserts <2% overhead on the p1_8_2
co-simulation).  Switch it on with ``REPRO_TRACE=1``, with
``python -m repro --profile ...``, or by calling :func:`enable`.
See ``docs/OBSERVABILITY.md`` for conventions and the report schema.
"""

from __future__ import annotations

import os

from repro.obs.runtime import STATE, disable, enable, enabled
from repro.obs.trace import (
    NULL_SPAN,
    TRACER,
    SpanEvent,
    Tracer,
    current_trace_id,
    load_jsonl,
    set_trace_id,
    span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
    snapshot,
)
from repro.obs.progress import (
    ProgressEvent,
    format_progress_line,
    progress,
    progress_sink,
    set_progress_sink,
)
from repro.obs.report import (
    build_run_report,
    dump_report_json,
    environment_metadata,
    git_metadata,
    render_metrics,
    render_run_report,
    write_run_report,
)
from repro.obs import history
from repro.obs import live
from repro.obs import promtext
from repro.obs import report
from repro.obs.wave import VcdVar, VcdWriter

__all__ = [
    "STATE",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "NULL_SPAN",
    "SpanEvent",
    "Tracer",
    "TRACER",
    "load_jsonl",
    "set_trace_id",
    "current_trace_id",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "progress",
    "ProgressEvent",
    "format_progress_line",
    "progress_sink",
    "set_progress_sink",
    "history",
    "live",
    "promtext",
    "build_run_report",
    "dump_report_json",
    "write_run_report",
    "render_run_report",
    "render_metrics",
    "environment_metadata",
    "git_metadata",
    "export_trace_jsonl",
    "export_trace",
    "VcdVar",
    "VcdWriter",
]


def reset() -> None:
    """Clear recorded spans and zero all metrics (switch unchanged)."""
    TRACER.clear()
    REGISTRY.reset()


def export_trace_jsonl(path) -> int:
    """Write the collected spans as Chrome-trace JSONL; event count."""
    return TRACER.export_jsonl(path)


def export_trace(path) -> int:
    """Write the collected spans, format chosen by suffix.

    ``.json`` produces a valid JSON-array Chrome trace that loads
    directly in Perfetto / ``chrome://tracing``; any other suffix
    (conventionally ``.jsonl``) keeps the streaming one-event-per-line
    format.  Returns the event count either way.
    """
    if str(path).endswith(".json"):
        return TRACER.export_json(path)
    return TRACER.export_jsonl(path)


# Environment switch: REPRO_TRACE=1 (anything but "", "0") enables the
# collector for the whole process, no code changes needed.
if os.environ.get("REPRO_TRACE", "") not in ("", "0"):
    enable()
