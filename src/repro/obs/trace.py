"""Nestable tracing spans with a thread-safe in-process collector.

A *span* measures one stage of the flow::

    with obs.span("sta", design=netlist.name):
        report = timing_report(netlist, library)

Spans record wall time (``perf_counter``), CPU time (``thread_time``),
the nesting path (``"sweep/evaluate_design/sta"``), and arbitrary
key=value attributes.  Nesting is tracked per thread; the collector
itself is shared and lock-protected, so concurrent harnesses can trace
into one :class:`Tracer`.

When the observability switch is off, :func:`span` returns a shared
no-op context manager -- no allocation, no clock reads -- so
instrumented call sites cost a function call and a branch.

The recorded events export as JSON Lines with Chrome-trace-compatible
fields (``name``/``ph``/``ts``/``dur``/``pid``/``tid``/``args``) via
:meth:`Tracer.export_jsonl` -- one event per line keeps the file
greppable and streamable -- or as a ready-to-load JSON array via
:meth:`Tracer.export_json` for direct Perfetto / ``chrome://tracing``
consumption.

**Trace IDs**: a long-running service runs many logical jobs through
one process-wide tracer, so each thread may carry a *trace id*
(:func:`set_trace_id`) that stamps every span it records.  The id
rides along when span batches ship across process boundaries (the
:mod:`repro.exec` engine forwards the submitting thread's id into its
workers), letting :meth:`Tracer.drain` stitch one job's spans --
across threads *and* worker processes -- into a single trace.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.obs import live
from repro.obs.runtime import STATE

# Wall-clock anchor: perf_counter gives monotonic durations, this pair
# maps them back onto the epoch for absolute ``ts`` fields.
_EPOCH0 = time.time()
_PERF0 = time.perf_counter()

# Per-thread trace id; workers inherit theirs from the submitting
# thread via the exec engine, not from this local.
_TRACE_LOCAL = threading.local()


def set_trace_id(trace_id: str | None) -> None:
    """Stamp (or clear, with ``None``) this thread's trace id."""
    _TRACE_LOCAL.trace_id = trace_id


def current_trace_id() -> str | None:
    """This thread's trace id, or ``None`` when unset."""
    return getattr(_TRACE_LOCAL, "trace_id", None)


def _epoch_us(perf_now: float) -> float:
    return (_EPOCH0 + (perf_now - _PERF0)) * 1e6


@dataclass
class SpanEvent:
    """One completed span.

    Attributes:
        name: Stage name (see ``docs/OBSERVABILITY.md`` conventions).
        path: Slash-joined nesting path, outermost first.
        depth: Nesting depth (0 = top-level stage).
        start_us: Absolute start time, microseconds since the epoch.
        wall_s: Wall-clock duration in seconds.
        cpu_s: CPU time consumed by the owning thread, in seconds.
        thread_id: ``threading.get_ident()`` of the recording thread.
        attrs: Key=value attributes given at creation or via ``note``.
        error: Exception type name if the span body raised, else None.
        pid: OS process id captured when the span closed (``0`` on
            legacy events; :meth:`to_chrome` falls back to the current
            process).  Captured at *record* time so spans shipped from
            pool workers keep their worker pid after crossing back.
        trace_id: The recording thread's trace id at close, or None.
    """

    name: str
    path: str
    depth: int
    start_us: float
    wall_s: float
    cpu_s: float
    thread_id: int
    attrs: dict = field(default_factory=dict)
    error: str | None = None
    pid: int = 0
    trace_id: str | None = None

    def to_chrome(self) -> dict:
        """Chrome-trace ``X`` (complete) event for this span."""
        args = dict(self.attrs)
        args["path"] = self.path
        args["cpu_s"] = round(self.cpu_s, 9)
        if self.error is not None:
            args["error"] = self.error
        if self.trace_id is not None:
            args["trace_id"] = self.trace_id
        return {
            "name": self.name,
            "ph": "X",
            "ts": round(self.start_us, 3),
            "dur": round(self.wall_s * 1e6, 3),
            "pid": self.pid or os.getpid(),
            "tid": self.thread_id,
            "cat": "repro",
            "args": args,
        }


@dataclass(frozen=True)
class SpanSummary:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    wall_s: float
    cpu_s: float


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def note(self, **attrs) -> None:
        """Ignore post-hoc attributes (mirror of :meth:`_Span.note`)."""


NULL_SPAN = _NullSpan()


class _Span:
    """Live span handed out by :meth:`Tracer.span` (context manager)."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_cpu_start", "_path", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def note(self, **attrs) -> None:
        """Attach attributes discovered while the span body runs."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._path = "/".join([*stack, self.name])
        stack.append(self.name)
        self._cpu_start = time.thread_time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        cpu_end = time.thread_time()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._tracer._record(
            SpanEvent(
                name=self.name,
                path=self._path,
                depth=self._depth,
                start_us=_epoch_us(self._start),
                wall_s=end - self._start,
                cpu_s=cpu_end - self._cpu_start,
                thread_id=threading.get_ident(),
                attrs=self.attrs,
                error=None if exc_type is None else exc_type.__name__,
                pid=os.getpid(),
                trace_id=current_trace_id(),
            )
        )
        return False  # never swallow exceptions


class Tracer:
    """Thread-safe collector of :class:`SpanEvent` records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[SpanEvent] = []
        self._local = threading.local()

    # -- recording ---------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, event: SpanEvent) -> None:
        with self._lock:
            self._events.append(event)
        if live.ACTIVE is not None:
            live.publish(
                "span",
                {
                    "name": event.name,
                    "path": event.path,
                    "wall_s": round(event.wall_s, 6),
                    "pid": event.pid,
                    "trace_id": event.trace_id,
                    "error": event.error,
                },
            )

    def span(self, name: str, **attrs) -> _Span:
        """A live span; prefer the module-level :func:`span` gate."""
        return _Span(self, name, attrs)

    def absorb(self, events: "list[SpanEvent]") -> None:
        """Append spans recorded elsewhere (e.g. shipped from workers).

        The caller is responsible for re-rooting ``path``/``depth``
        first if the spans should nest under the current position (see
        :meth:`current_path`); events are appended verbatim.  On a live
        bus a whole batch publishes as one ``spans`` summary event
        rather than per-span, to bound SSE volume for big fan-outs.
        """
        with self._lock:
            self._events.extend(events)
        if live.ACTIVE is not None and events:
            live.publish(
                "spans",
                {
                    "count": len(events),
                    "pids": sorted({e.pid for e in events if e.pid}),
                    "trace_id": events[0].trace_id,
                    "wall_s": round(sum(e.wall_s for e in events), 6),
                },
            )

    def current_path(self) -> tuple[str, int]:
        """This thread's open-span nesting as ``(slash_path, depth)``.

        ``("", 0)`` outside any span.  Used to re-root worker span
        batches under the parent's live span before :meth:`absorb`.
        """
        stack = self._stack()
        return "/".join(stack), len(stack)

    # -- reading -----------------------------------------------------------

    def events(self) -> list[SpanEvent]:
        """Snapshot of all recorded spans, in completion order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def drain(self, predicate) -> list[SpanEvent]:
        """Remove and return every span matching ``predicate``.

        The serve layer drains a finished job's spans (matched by
        trace id) out of the process-wide tracer into per-job storage,
        which both stitches the job's trace and keeps the long-running
        collector from growing without bound.
        """
        with self._lock:
            kept: list[SpanEvent] = []
            taken: list[SpanEvent] = []
            for event in self._events:
                (taken if predicate(event) else kept).append(event)
            self._events = kept
        return taken

    def summaries(self, depth: int | None = None) -> list[SpanSummary]:
        """Per-name aggregates (count, total wall, total CPU).

        Args:
            depth: Restrict to spans at one nesting depth (``0`` =
                top-level stages, the run-report default); ``None``
                aggregates every depth.
        """
        totals: dict[str, list[float]] = {}
        for event in self.events():
            if depth is not None and event.depth != depth:
                continue
            bucket = totals.setdefault(event.name, [0, 0.0, 0.0])
            bucket[0] += 1
            bucket[1] += event.wall_s
            bucket[2] += event.cpu_s
        return [
            SpanSummary(name=name, count=int(c), wall_s=w, cpu_s=cpu)
            for name, (c, w, cpu) in sorted(
                totals.items(), key=lambda item: -item[1][1]
            )
        ]

    def call_counts(self) -> dict[str, int]:
        """Span invocation count per name (any depth)."""
        counts: dict[str, int] = {}
        for event in self.events():
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    # -- export ------------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write one Chrome-trace event per line; returns event count."""
        events = self.events()
        with open(path, "w") as handle:
            for event in events:
                handle.write(json.dumps(event.to_chrome()) + "\n")
        return len(events)

    def export_json(self, path) -> int:
        """Write a JSON-array Chrome trace (loads directly in Perfetto)."""
        events = self.events()
        with open(path, "w") as handle:
            handle.write("[\n")
            for index, event in enumerate(events):
                comma = "," if index + 1 < len(events) else ""
                handle.write(json.dumps(event.to_chrome()) + comma + "\n")
            handle.write("]\n")
        return len(events)


#: The process-wide collector used by the module-level :func:`span`.
TRACER = Tracer()


def span(name: str, **attrs):
    """A recording span when tracing is enabled, else a shared no-op."""
    if not STATE.enabled:
        return NULL_SPAN
    return TRACER.span(name, **attrs)


def load_jsonl(path) -> list[dict]:
    """Parse a JSONL trace file back into chrome-event dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
