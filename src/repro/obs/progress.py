"""Progress logging for long loops (sweeps, fault campaigns).

:func:`progress` wraps any iterable; while the obs switch is off it
yields straight through (one branch of overhead total), and while on
it logs every ``every`` items with throughput and -- when the total is
known -- an ETA::

    for config in progress(standard_sweep(), "sweep", every=8):
        evaluate_design(config, technology)

    [obs] sweep: 8/24 (33%) 2.1/s eta 7.6s

Lines go to stderr so piped table output stays clean.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, Iterator, TypeVar

from repro.obs.runtime import STATE

T = TypeVar("T")


def progress(
    iterable: Iterable[T],
    label: str,
    every: int = 10,
    total: int | None = None,
    stream=None,
) -> Iterator[T]:
    """Yield from ``iterable``, logging rate/ETA when tracing is on.

    Args:
        iterable: The items to pass through.
        label: Loop name used as the line prefix.
        every: Emit one line per this many items.
        total: Item count for percent/ETA; inferred via ``len`` when
            the iterable supports it.
        stream: Output stream (default ``sys.stderr``).
    """
    if not STATE.enabled:
        yield from iterable
        return
    if total is None:
        try:
            total = len(iterable)  # type: ignore[arg-type]
        except TypeError:
            total = None
    out = stream if stream is not None else sys.stderr
    start = time.perf_counter()
    done = 0
    for item in iterable:
        yield item
        done += 1
        if done % every == 0 and done != total:
            _emit(out, label, done, total, time.perf_counter() - start)
    if done:
        _emit(out, label, done, total, time.perf_counter() - start, final=True)


def _emit(out, label, done, total, elapsed, final=False) -> None:
    rate = done / elapsed if elapsed > 0 else 0.0
    parts = [f"[obs] {label}: {done}"]
    if total:
        parts[0] += f"/{total} ({100 * done // total}%)"
    parts.append(f"{rate:.1f}/s")
    if final:
        parts.append(f"in {elapsed:.2f}s")
    elif total and rate > 0:
        parts.append(f"eta {(total - done) / rate:.1f}s")
    print(" ".join(parts), file=out, flush=True)
