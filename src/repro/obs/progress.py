"""Progress logging for long loops (sweeps, fault campaigns).

:func:`progress` wraps any iterable; while the obs switch is off it
yields straight through (one branch of overhead total), and while on
it logs every ``every`` items with throughput and -- when the total is
known -- an ETA::

    for config in progress(standard_sweep(), "sweep", every=8):
        evaluate_design(config, technology)

    [obs] sweep: 8/24 (33%) 2.1/s eta 7.6s

Lines go to stderr so piped table output stays clean.

**Heartbeat mode**: when the output stream is *not* a tty (CI logs,
piped output), item-count pacing alone can go silent for minutes --
slow items mean the ``every`` boundary never arrives.  A wall-clock
heartbeat therefore also flushes a status line whenever ``heartbeat``
seconds have passed since the last emission (default
:data:`HEARTBEAT_SECONDS` for non-ttys, off for interactive streams
where item pacing suffices; ``REPRO_PROGRESS_HEARTBEAT`` overrides the
interval, ``0`` disables).  Heartbeat lines carry the elapsed wall
clock so a stalled campaign is distinguishable from a slow one.

**Pluggable sink**: every emission builds one structured
:class:`ProgressEvent`; the default sink renders it with
:func:`format_progress_line` (byte-identical to the historical stderr
format) and prints it, while :func:`set_progress_sink` swaps in any
callable -- the serve layer folds events into per-job progress/ETA
this way instead of scraping stderr.  Independently of the sink, each
event also publishes onto the live bus (:mod:`repro.obs.live`) when
one is active.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, TypeVar

from repro.obs import live
from repro.obs.runtime import STATE
from repro.obs.trace import current_trace_id

T = TypeVar("T")

#: Default wall-clock flush interval for non-tty streams, seconds.
HEARTBEAT_SECONDS = 30.0


@dataclass(frozen=True)
class ProgressEvent:
    """One progress emission (item-paced, heartbeat, or final).

    Attributes:
        label: Loop name (the line prefix).
        done: Items completed so far.
        total: Known item count, or None.
        elapsed_s: Wall-clock seconds since the loop started.
        rate: Items per second (0.0 before any time elapsed).
        final: True for the closing line after the last item.
        heartbeat: True when emitted by the wall-clock heartbeat.
        trace_id: The emitting thread's trace id, or None.
    """

    label: str
    done: int
    total: int | None
    elapsed_s: float
    rate: float
    final: bool = False
    heartbeat: bool = False
    trace_id: str | None = None

    @property
    def percent(self) -> int | None:
        """Whole-number completion percent, or None without a total."""
        if not self.total:
            return None
        return 100 * self.done // self.total

    @property
    def eta_s(self) -> float | None:
        """Seconds remaining at the current rate, or None."""
        if self.final or not self.total or self.rate <= 0:
            return None
        return (self.total - self.done) / self.rate


def format_progress_line(event: ProgressEvent) -> str:
    """Render one event exactly as the historical stderr line."""
    parts = [f"[obs] {event.label}: {event.done}"]
    if event.total:
        parts[0] += f"/{event.total} ({100 * event.done // event.total}%)"
    parts.append(f"{event.rate:.1f}/s")
    if event.final:
        parts.append(f"in {event.elapsed_s:.2f}s")
    else:
        if event.total and event.rate > 0:
            parts.append(f"eta {(event.total - event.done) / event.rate:.1f}s")
        if event.heartbeat:
            parts.append(f"elapsed {event.elapsed_s:.0f}s")
    return " ".join(parts)


#: Installed sink, or None for the default stderr-line behavior.
_SINK: Callable[[ProgressEvent], None] | None = None


def set_progress_sink(sink: Callable[[ProgressEvent], None] | None) -> None:
    """Install a progress sink (``None`` restores the default lines)."""
    global _SINK
    _SINK = sink


def progress_sink() -> Callable[[ProgressEvent], None] | None:
    """The installed sink, or None under the default behavior."""
    return _SINK


def _resolve_heartbeat(heartbeat: float | None, stream) -> float:
    """Effective heartbeat interval (0 = disabled) for one stream.

    Explicit argument wins, then ``REPRO_PROGRESS_HEARTBEAT``, then
    :data:`HEARTBEAT_SECONDS` for non-tty streams / disabled for ttys
    (interactive terminals already see the item-paced lines scroll).
    """
    if heartbeat is not None:
        return max(0.0, heartbeat)
    env = os.environ.get("REPRO_PROGRESS_HEARTBEAT", "")
    if env:
        try:
            return max(0.0, float(env))
        except ValueError:
            pass
    try:
        interactive = stream.isatty()
    except (AttributeError, OSError):
        interactive = False
    return 0.0 if interactive else HEARTBEAT_SECONDS


def progress(
    iterable: Iterable[T],
    label: str,
    every: int = 10,
    total: int | None = None,
    stream=None,
    heartbeat: float | None = None,
) -> Iterator[T]:
    """Yield from ``iterable``, logging rate/ETA when tracing is on.

    Args:
        iterable: The items to pass through.
        label: Loop name used as the line prefix.
        every: Emit one line per this many items.
        total: Item count for percent/ETA; inferred via ``len`` when
            the iterable supports it.
        stream: Output stream (default ``sys.stderr``).
        heartbeat: Also emit when this many wall-clock seconds passed
            since the last line, regardless of item count.  ``None``
            auto-selects (30s for non-tty streams, off for ttys);
            ``0`` disables.
    """
    if not STATE.enabled:
        yield from iterable
        return
    if total is None:
        try:
            total = len(iterable)  # type: ignore[arg-type]
        except TypeError:
            total = None
    out = stream if stream is not None else sys.stderr
    beat = _resolve_heartbeat(heartbeat, out)
    start = time.perf_counter()
    last_emit = start
    done = 0
    for item in iterable:
        yield item
        done += 1
        if done == total:
            continue  # the final line below covers the last item
        now = time.perf_counter()
        if done % every == 0:
            _emit(out, label, done, total, now - start)
            last_emit = now
        elif beat and now - last_emit >= beat:
            _emit(out, label, done, total, now - start, heartbeat=True)
            last_emit = now
    if done:
        _emit(out, label, done, total, time.perf_counter() - start, final=True)


def _emit(out, label, done, total, elapsed, final=False, heartbeat=False) -> None:
    rate = done / elapsed if elapsed > 0 else 0.0
    event = ProgressEvent(
        label=label,
        done=done,
        total=total,
        elapsed_s=elapsed,
        rate=rate,
        final=final,
        heartbeat=heartbeat,
        trace_id=current_trace_id(),
    )
    if live.ACTIVE is not None:
        live.publish(
            "progress",
            {
                "label": event.label,
                "done": event.done,
                "total": event.total,
                "rate": round(event.rate, 3),
                "percent": event.percent,
                "eta_s": None if event.eta_s is None else round(event.eta_s, 1),
                "final": event.final,
                "trace_id": event.trace_id,
            },
        )
    sink = _SINK
    if sink is not None:
        sink(event)
    else:
        print(format_progress_line(event), file=out, flush=True)
