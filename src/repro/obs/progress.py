"""Progress logging for long loops (sweeps, fault campaigns).

:func:`progress` wraps any iterable; while the obs switch is off it
yields straight through (one branch of overhead total), and while on
it logs every ``every`` items with throughput and -- when the total is
known -- an ETA::

    for config in progress(standard_sweep(), "sweep", every=8):
        evaluate_design(config, technology)

    [obs] sweep: 8/24 (33%) 2.1/s eta 7.6s

Lines go to stderr so piped table output stays clean.

**Heartbeat mode**: when the output stream is *not* a tty (CI logs,
piped output), item-count pacing alone can go silent for minutes --
slow items mean the ``every`` boundary never arrives.  A wall-clock
heartbeat therefore also flushes a status line whenever ``heartbeat``
seconds have passed since the last emission (default
:data:`HEARTBEAT_SECONDS` for non-ttys, off for interactive streams
where item pacing suffices; ``REPRO_PROGRESS_HEARTBEAT`` overrides the
interval, ``0`` disables).  Heartbeat lines carry the elapsed wall
clock so a stalled campaign is distinguishable from a slow one.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Iterable, Iterator, TypeVar

from repro.obs.runtime import STATE

T = TypeVar("T")

#: Default wall-clock flush interval for non-tty streams, seconds.
HEARTBEAT_SECONDS = 30.0


def _resolve_heartbeat(heartbeat: float | None, stream) -> float:
    """Effective heartbeat interval (0 = disabled) for one stream.

    Explicit argument wins, then ``REPRO_PROGRESS_HEARTBEAT``, then
    :data:`HEARTBEAT_SECONDS` for non-tty streams / disabled for ttys
    (interactive terminals already see the item-paced lines scroll).
    """
    if heartbeat is not None:
        return max(0.0, heartbeat)
    env = os.environ.get("REPRO_PROGRESS_HEARTBEAT", "")
    if env:
        try:
            return max(0.0, float(env))
        except ValueError:
            pass
    try:
        interactive = stream.isatty()
    except (AttributeError, OSError):
        interactive = False
    return 0.0 if interactive else HEARTBEAT_SECONDS


def progress(
    iterable: Iterable[T],
    label: str,
    every: int = 10,
    total: int | None = None,
    stream=None,
    heartbeat: float | None = None,
) -> Iterator[T]:
    """Yield from ``iterable``, logging rate/ETA when tracing is on.

    Args:
        iterable: The items to pass through.
        label: Loop name used as the line prefix.
        every: Emit one line per this many items.
        total: Item count for percent/ETA; inferred via ``len`` when
            the iterable supports it.
        stream: Output stream (default ``sys.stderr``).
        heartbeat: Also emit when this many wall-clock seconds passed
            since the last line, regardless of item count.  ``None``
            auto-selects (30s for non-tty streams, off for ttys);
            ``0`` disables.
    """
    if not STATE.enabled:
        yield from iterable
        return
    if total is None:
        try:
            total = len(iterable)  # type: ignore[arg-type]
        except TypeError:
            total = None
    out = stream if stream is not None else sys.stderr
    beat = _resolve_heartbeat(heartbeat, out)
    start = time.perf_counter()
    last_emit = start
    done = 0
    for item in iterable:
        yield item
        done += 1
        if done == total:
            continue  # the final line below covers the last item
        now = time.perf_counter()
        if done % every == 0:
            _emit(out, label, done, total, now - start)
            last_emit = now
        elif beat and now - last_emit >= beat:
            _emit(out, label, done, total, now - start, heartbeat=True)
            last_emit = now
    if done:
        _emit(out, label, done, total, time.perf_counter() - start, final=True)


def _emit(out, label, done, total, elapsed, final=False, heartbeat=False) -> None:
    rate = done / elapsed if elapsed > 0 else 0.0
    parts = [f"[obs] {label}: {done}"]
    if total:
        parts[0] += f"/{total} ({100 * done // total}%)"
    parts.append(f"{rate:.1f}/s")
    if final:
        parts.append(f"in {elapsed:.2f}s")
    else:
        if total and rate > 0:
            parts.append(f"eta {(total - done) / rate:.1f}s")
        if heartbeat:
            parts.append(f"elapsed {elapsed:.0f}s")
    print(" ".join(parts), file=out, flush=True)
