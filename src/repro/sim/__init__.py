"""Instruction-set simulation of TP-ISA programs.

:mod:`repro.sim.machine` executes programs functionally and collects
the dynamic statistics (instruction counts, memory traffic, branch
behaviour) that drive the application-level energy and execution-time
models of Section 8.  :mod:`repro.sim.pipeline` converts those
statistics into cycle counts for 1-, 2-, and 3-stage pipeline
configurations using the paper's stall-on-hazard policy.
"""

from repro.sim.machine import ExecutionStats, Machine, RunResult
from repro.sim.pipeline import PipelineModel, cycles_for
from repro.sim.trace import FetchTrace

__all__ = [
    "ExecutionStats",
    "Machine",
    "RunResult",
    "PipelineModel",
    "cycles_for",
    "FetchTrace",
]
