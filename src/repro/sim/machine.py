"""Functional TP-ISA instruction-set simulator.

The :class:`Machine` executes a :class:`~repro.isa.program.Program`
with exact architectural semantics (modular arithmetic at the
configured datawidth, carry-chained coalescing operations, BAR-relative
addressing) and records the dynamic statistics the evaluation flow
needs.  It also tracks the hazard events from which
:mod:`repro.sim.pipeline` derives multi-stage cycle counts.

Halting convention: a taken unconditional branch to its own address
(the assembler's ``HALT``) stops execution, as does the PC running off
the end of the program.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa.program import Program
from repro.isa.spec import Flag, Instruction, MemOperand, Mnemonic
from repro.obs.metrics import counter as _obs_counter
from repro.obs.metrics import gauge as _obs_gauge
from repro.obs.runtime import STATE as _OBS

#: Safety valve for runaway programs.
DEFAULT_MAX_STEPS = 5_000_000

# Flushed as aggregates at the end of :meth:`Machine.run`, so the
# per-instruction hot loop carries no instrumentation at all.
_INSTRUCTIONS = _obs_counter("iss.instructions_retired")
_RUNS = _obs_counter("iss.runs")
_WORKING_SET = _obs_gauge("iss.trace_working_set")


@dataclass
class ExecutionStats:
    """Dynamic statistics of one program run.

    Attributes:
        instructions: Dynamic instruction count.
        fetches: Instruction-memory accesses (one per instruction).
        memory_reads: Data-memory read accesses.
        memory_writes: Data-memory write accesses.
        branches: Dynamic branch count.
        taken_branches: Branches that redirected the PC.
        raw_hazards: Adjacent read-after-write address collisions
            (instruction *i+1* reads an address *i* wrote) -- the
            events that stall a 3-stage pipeline.
        mnemonic_counts: Dynamic count per mnemonic.
        touched_addresses: Set of data addresses read or written.
    """

    instructions: int = 0
    fetches: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    read_phases: int = 0
    write_phases: int = 0
    branches: int = 0
    taken_branches: int = 0
    raw_hazards: int = 0
    mnemonic_counts: Counter = field(default_factory=Counter)
    touched_addresses: set = field(default_factory=set)

    @property
    def memory_accesses(self) -> int:
        return self.memory_reads + self.memory_writes

    def data_words_used(self) -> int:
        """Number of distinct data words the run touched."""
        return len(self.touched_addresses)


@dataclass
class RunResult:
    """Outcome of :meth:`Machine.run`."""

    halted: bool
    stats: ExecutionStats
    final_pc: int


class Machine:
    """TP-ISA architectural simulator.

    Args:
        program: The program image to execute.
        mem_size: Data-memory words available (defaults to the full
            256-word architectural space).
        num_bars: Number of base-address registers (defaults to the
            program's declared configuration).
    """

    def __init__(
        self,
        program: Program,
        mem_size: int = 256,
        num_bars: int | None = None,
        fetch_trace=None,
    ) -> None:
        if mem_size < 1 or mem_size > 256:
            raise SimulationError(f"mem_size {mem_size} out of range (1..256)")
        self.program = program
        self.mem_size = mem_size
        self.num_bars = num_bars if num_bars is not None else program.num_bars
        if self.num_bars < 1:
            raise SimulationError("need at least BAR[0]")
        self.width = program.datawidth
        self.mask = (1 << self.width) - 1
        self.fetch_trace = fetch_trace
        self.reset()

    def reset(self) -> None:
        """Return to the architectural reset state and reload data."""
        self.pc = 0
        self.flags = 0
        self.bars = [0] * self.num_bars
        self.memory = [0] * self.mem_size
        for address, value in self.program.data.items():
            if address >= self.mem_size:
                raise SimulationError(
                    f"initial data at {address} exceeds memory size {self.mem_size}"
                )
            self.memory[address] = value & self.mask
        self.stats = ExecutionStats()
        self.halted = False
        self._last_write: int | None = None

    # -- memory helpers ----------------------------------------------------

    def effective_address(self, operand: MemOperand) -> int:
        """BAR-relative address resolution (modulo the 8-bit space)."""
        if operand.bar >= self.num_bars:
            raise SimulationError(
                f"operand uses BAR {operand.bar} but core has {self.num_bars}"
            )
        address = (self.bars[operand.bar] + operand.offset) & 0xFF
        if address >= self.mem_size:
            raise SimulationError(
                f"effective address {address} exceeds memory size {self.mem_size}"
            )
        return address

    def _read(self, operand: MemOperand) -> tuple[int, int]:
        address = self.effective_address(operand)
        self.stats.memory_reads += 1
        self.stats.touched_addresses.add(address)
        return self.memory[address], address

    def _write(self, address: int, value: int) -> None:
        self.memory[address] = value & self.mask
        self.stats.memory_writes += 1
        self.stats.touched_addresses.add(address)

    def load(self, symbol_or_address, value: int) -> None:
        """Poke a data word (symbol name or address) -- harness helper."""
        address = (
            self.program.address_of(symbol_or_address)
            if isinstance(symbol_or_address, str)
            else symbol_or_address
        )
        self.memory[address] = value & self.mask

    def peek(self, symbol_or_address) -> int:
        """Read a data word (symbol name or address) -- harness helper."""
        address = (
            self.program.address_of(symbol_or_address)
            if isinstance(symbol_or_address, str)
            else symbol_or_address
        )
        return self.memory[address]

    # -- flag helpers -----------------------------------------------------------

    def _set_result_flags(self, result: int, carry: int | None, overflow: int | None) -> None:
        flags = 0
        if result >> (self.width - 1):
            flags |= Flag.S
        if result == 0:
            flags |= Flag.Z
        if carry:
            flags |= Flag.C
        if overflow:
            flags |= Flag.V
        self.flags = int(flags)

    @property
    def carry(self) -> int:
        return 1 if self.flags & Flag.C else 0

    # -- execution ------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction (no-op once halted)."""
        if self.halted:
            return
        if self.pc >= len(self.program.instructions):
            self.halted = True
            return
        instruction = self.program.instructions[self.pc]
        self.stats.instructions += 1
        self.stats.fetches += 1
        if self.fetch_trace is not None:
            self.fetch_trace.record(self.pc)
        self.stats.mnemonic_counts[instruction.mnemonic.value] += 1

        reads = [self.effective_address(op) for op in instruction.memory_reads()]
        if self._last_write is not None and self._last_write in reads:
            self.stats.raw_hazards += 1
        # Port-parallel phase accounting: both operands of an M-type
        # instruction are read through the dual-port RAM in one access
        # window; the writeback is a second window.
        if reads:
            self.stats.read_phases += 1
        if instruction.memory_write() is not None:
            self.stats.write_phases += 1

        next_pc = (self.pc + 1) & 0xFF
        write_address: int | None = None
        mnemonic = instruction.mnemonic

        if mnemonic in _ADD_FAMILY:
            write_address = self._execute_add_family(instruction)
        elif mnemonic in _LOGIC_FAMILY:
            write_address = self._execute_logic(instruction)
        elif mnemonic is Mnemonic.NOT:
            value, _ = self._read(instruction.src)
            address = self.effective_address(instruction.dst)
            result = (~value) & self.mask
            self._set_result_flags(result, carry=0, overflow=0)
            self._write(address, result)
            write_address = address
        elif mnemonic in _ROTATE_FAMILY:
            write_address = self._execute_rotate(instruction)
        elif mnemonic is Mnemonic.STORE:
            if instruction.imm > self.mask:
                raise SimulationError(
                    f"STORE immediate {instruction.imm} exceeds {self.width}-bit width"
                )
            address = self.effective_address(instruction.dst)
            self._write(address, instruction.imm)
            write_address = address
        elif mnemonic is Mnemonic.SETBAR:
            if instruction.bar_index >= self.num_bars:
                raise SimulationError(
                    f"SETBAR {instruction.bar_index} but core has {self.num_bars} BARs"
                )
            value, _ = self._read(instruction.src)
            self.bars[instruction.bar_index] = value & 0xFF
        else:  # branch
            self.stats.branches += 1
            tested = self.flags & instruction.mask
            taken = tested != 0 if mnemonic is Mnemonic.BR else tested == 0
            if taken:
                self.stats.taken_branches += 1
                if instruction.target == self.pc and instruction.mask == 0:
                    self.halted = True  # HALT convention
                next_pc = instruction.target

        self._last_write = write_address
        self.pc = next_pc

    def _execute_add_family(self, instruction: Instruction) -> int | None:
        a, dst_address = self._read(instruction.dst)
        b, _ = self._read(instruction.src)
        mnemonic = instruction.mnemonic
        subtract = mnemonic in (Mnemonic.SUB, Mnemonic.CMP, Mnemonic.SBB)
        b_eff = (~b) & self.mask if subtract else b
        if mnemonic in (Mnemonic.ADC, Mnemonic.SBB):
            cin = self.carry
        else:
            cin = 1 if subtract else 0
        total = a + b_eff + cin
        result = total & self.mask
        carry = total >> self.width
        sign_bit = 1 << (self.width - 1)
        overflow = 1 if ((~(a ^ b_eff)) & (a ^ result)) & sign_bit else 0
        self._set_result_flags(result, carry, overflow)
        if instruction.spec.writes:
            self._write(dst_address, result)
            return dst_address
        return None

    def _execute_logic(self, instruction: Instruction) -> int | None:
        a, dst_address = self._read(instruction.dst)
        b, _ = self._read(instruction.src)
        mnemonic = instruction.mnemonic
        if mnemonic in (Mnemonic.AND, Mnemonic.TEST):
            result = a & b
        elif mnemonic is Mnemonic.OR:
            result = a | b
        else:
            result = a ^ b
        self._set_result_flags(result, carry=0, overflow=0)
        if instruction.spec.writes:
            self._write(dst_address, result)
            return dst_address
        return None

    def _execute_rotate(self, instruction: Instruction) -> int:
        value, _ = self._read(instruction.src)
        address = self.effective_address(instruction.dst)
        width = self.width
        msb = 1 << (width - 1)
        mnemonic = instruction.mnemonic
        if mnemonic is Mnemonic.RL:
            result = ((value << 1) | (value >> (width - 1))) & self.mask
            carry = 1 if value & msb else 0
        elif mnemonic is Mnemonic.RLC:
            result = ((value << 1) | self.carry) & self.mask
            carry = 1 if value & msb else 0
        elif mnemonic is Mnemonic.RR:
            result = (value >> 1) | ((value & 1) << (width - 1))
            carry = value & 1
        elif mnemonic is Mnemonic.RRC:
            result = (value >> 1) | (self.carry << (width - 1))
            carry = value & 1
        else:  # RRA: arithmetic shift right
            result = (value >> 1) | (value & msb)
            carry = value & 1
        self._set_result_flags(result, carry, overflow=0)
        self._write(address, result)
        return address

    def run(self, max_steps: int = DEFAULT_MAX_STEPS) -> RunResult:
        """Run until halt or ``max_steps``.

        Raises:
            SimulationError: If the step budget is exhausted before the
                program halts (runaway loop).
        """
        executed_before = self.stats.instructions
        try:
            for _ in range(max_steps):
                if self.halted:
                    break
                self.step()
            else:
                if not self.halted:
                    raise SimulationError(
                        f"{self.program.name}: no halt within {max_steps} steps"
                    )
        finally:
            if _OBS.enabled:
                _RUNS.inc()
                _INSTRUCTIONS.inc(self.stats.instructions - executed_before)
                if self.fetch_trace is not None:
                    _WORKING_SET.set(self.fetch_trace.unique_addresses())
        return RunResult(halted=self.halted, stats=self.stats, final_pc=self.pc)


_ADD_FAMILY = frozenset(
    {Mnemonic.ADD, Mnemonic.ADC, Mnemonic.SUB, Mnemonic.CMP, Mnemonic.SBB}
)
_LOGIC_FAMILY = frozenset({Mnemonic.AND, Mnemonic.TEST, Mnemonic.OR, Mnemonic.XOR})
_ROTATE_FAMILY = frozenset(
    {Mnemonic.RL, Mnemonic.RLC, Mnemonic.RR, Mnemonic.RRC, Mnemonic.RRA}
)
