"""Pipeline cycle model for 1-, 2-, and 3-stage TP-ISA cores.

The paper's cores resolve all data and control hazards by stalling
(Section 5.2: "worst case CPI being equal to the number of pipeline
stages").  The stage assignments are:

* **1 stage** -- fetch/read/execute/write in one cycle.  CPI = 1.
* **2 stages** -- Fetch | Read+Execute+Write.  A taken branch redirects
  fetch one cycle late: 1 bubble.  Memory reads and writes are in the
  same stage, so there are no data hazards.
* **3 stages** -- Fetch | Read | Execute+Write.  A taken branch costs
  2 bubbles; an instruction reading an address the previous one writes
  must stall 1 cycle (read-after-write through memory).

Cycle counts are derived from :class:`~repro.sim.machine.ExecutionStats`
hazard event counts rather than re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.machine import ExecutionStats

#: Pipeline depths the paper sweeps.
SUPPORTED_DEPTHS = (1, 2, 3)


@dataclass(frozen=True)
class PipelineModel:
    """Hazard cost model for one pipeline depth."""

    stages: int
    branch_penalty: int
    raw_penalty: int

    def cycles(self, stats: ExecutionStats) -> int:
        """Total cycles to execute the run described by ``stats``.

        Adds the pipeline fill latency, branch bubbles, and RAW stalls
        to the base one-instruction-per-cycle throughput.
        """
        fill = self.stages - 1
        return (
            stats.instructions
            + fill
            + self.branch_penalty * stats.taken_branches
            + self.raw_penalty * stats.raw_hazards
        )

    def cpi(self, stats: ExecutionStats) -> float:
        """Average cycles per instruction for the run."""
        if stats.instructions == 0:
            return float(self.stages)
        return self.cycles(stats) / stats.instructions


_MODELS = {
    1: PipelineModel(stages=1, branch_penalty=0, raw_penalty=0),
    2: PipelineModel(stages=2, branch_penalty=1, raw_penalty=0),
    3: PipelineModel(stages=3, branch_penalty=2, raw_penalty=1),
}


def pipeline_model(stages: int) -> PipelineModel:
    """The stall model for a ``stages``-deep TP-ISA core."""
    try:
        return _MODELS[stages]
    except KeyError:
        raise ConfigError(f"unsupported pipeline depth {stages}") from None


def cycles_for(stats: ExecutionStats, stages: int) -> int:
    """Convenience wrapper: cycles for ``stats`` at ``stages`` depth."""
    return pipeline_model(stages).cycles(stats)


def worst_case_cpi(stages: int) -> int:
    """The paper's bound: worst-case CPI equals the stage count."""
    model = pipeline_model(stages)
    return 1 + max(model.branch_penalty, model.raw_penalty)
