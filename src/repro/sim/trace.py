"""Execution tracing hooks for the instruction-set simulator.

The base simulator keeps only aggregate statistics; a
:class:`FetchTrace` attached to a :class:`~repro.sim.machine.Machine`
records the dynamic PC stream, which downstream models replay -- e.g.
the instruction-cache study (:mod:`repro.memory.icache`), the paper's
suggested remedy for CNT-TFT cores whose execution time is dominated
by the 302 us ROM access latency.

Long-running workloads can bound the recorded window with
``FetchTrace(maxlen=...)`` (a ring buffer keeping the most recent
fetches); :meth:`FetchTrace.address_histogram` summarizes the stream
as address frequencies for the metrics layer and the cache models.
"""

from __future__ import annotations

from collections import Counter, deque


class FetchTrace:
    """Recorded instruction-fetch addresses, in execution order.

    Args:
        maxlen: Optional bound; when set, only the most recent
            ``maxlen`` fetches are kept (older ones are dropped, but
            :attr:`recorded` still counts every fetch seen).

    Attributes:
        addresses: The retained PC stream (a list when unbounded, a
            ``deque`` ring buffer when bounded).
        maxlen: The configured bound, or ``None``.
        recorded: Total fetches ever recorded, including dropped ones.
    """

    def __init__(self, maxlen: int | None = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self.maxlen = maxlen
        self.addresses = [] if maxlen is None else deque(maxlen=maxlen)
        self.recorded = 0
        # unique_addresses() memo, invalidated by append "epoch":
        # recomputing the set per query is quadratic over a run.
        self._unique_epoch = -1
        self._unique_count = 0

    def record(self, pc: int) -> None:
        self.addresses.append(pc)
        self.recorded += 1

    @property
    def dropped(self) -> int:
        """Fetches evicted by the bound (0 when unbounded)."""
        return self.recorded - len(self.addresses)

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self):
        return iter(self.addresses)

    def unique_addresses(self) -> int:
        """Distinct instruction words touched (working-set size).

        Cached per append epoch: repeated queries between fetches
        (cache studies probe this in a loop) reuse the computed count
        instead of rebuilding the set every call.
        """
        if self._unique_epoch != self.recorded:
            self._unique_count = len(set(self.addresses))
            self._unique_epoch = self.recorded
        return self._unique_count

    def address_histogram(self, top: int | None = None) -> list[tuple[int, int]]:
        """Address frequencies, hottest first.

        Args:
            top: Optionally keep only the ``top`` most-fetched
                addresses.

        Returns:
            ``(address, count)`` pairs sorted by descending count
            (ties by address).  Feeds the metrics layer and locality
            studies over the retained window.
        """
        counts = Counter(self.addresses)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top] if top is not None else ranked

    def top_n(self, n: int) -> list[tuple[int, int]]:
        """The ``n`` hottest addresses as ``(address, count)`` pairs.

        Hotspot helper over :meth:`address_histogram` used by the
        per-instruction energy profile (``python -m repro
        profile-design --top N``).

        Windowing caveat: with ``maxlen`` set, counts cover only the
        retained ring-buffer window -- the most recent ``maxlen``
        fetches -- while :attr:`recorded` keeps the true total and
        :attr:`dropped` says how many fetches fell out of the window.
        When profiling long runs, check ``dropped``: a nonzero value
        means the hotspot ranking describes the *tail* of the run, not
        the whole execution (steady-state loops are typically exactly
        what profiling wants, but one-shot init code will be missing).

        Raises:
            ValueError: If ``n`` is not positive.
        """
        if n < 1:
            raise ValueError(f"top_n needs a positive n, got {n}")
        return self.address_histogram(top=n)
