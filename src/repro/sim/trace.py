"""Execution tracing hooks for the instruction-set simulator.

The base simulator keeps only aggregate statistics; a
:class:`FetchTrace` attached to a :class:`~repro.sim.machine.Machine`
records the dynamic PC stream, which downstream models replay -- e.g.
the instruction-cache study (:mod:`repro.memory.icache`), the paper's
suggested remedy for CNT-TFT cores whose execution time is dominated
by the 302 us ROM access latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FetchTrace:
    """Recorded instruction-fetch addresses, in execution order."""

    addresses: list[int] = field(default_factory=list)

    def record(self, pc: int) -> None:
        self.addresses.append(pc)

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self):
        return iter(self.addresses)

    def unique_addresses(self) -> int:
        """Distinct instruction words touched (working-set size)."""
        return len(set(self.addresses))
