"""Functional yield under sampled device defects, on the real netlist.

``repro.pdk.variation.functional_yield`` answers the analytic question
-- with per-device yield ``y`` and ``n`` devices, ``y^n`` of printed
units are defect-*free*.  This module answers the question the paper's
cost argument actually needs: what fraction of printed units *runs the
application correctly*?  Those differ because a defect the program
never exercises does not break the unit -- exactly the blind spot
:mod:`repro.coregen.fault_test` measures from the other side -- so
application-level yield sits above ``y^n``.

Per printed unit, each cell instance fails independently with
probability ``1 - y^devices(cell)`` (its transistor + resistor count
from the library); a failed cell's output is stuck at a coin-flip
value.  Sampling uses the stream-split scheme of
:mod:`repro.mc.sampling` (domain ``"defects"``: cell ``k`` owns
substream ``k``, unit ``i`` consumes draw ``i``), so a unit's defect
set depends only on ``(seed, cell, unit)`` -- shard-invariant like the
timing samples, with a scalar reference path
(:func:`unit_defects`) the vectorized sampler is tested against.

Defect-free units work by definition and skip simulation entirely --
at realistic device yields that is most of the fleet, so the simulated
work scales with the *defective* population.  Defective units are
lane-packed (one unit per lane, all of its stuck-at faults forced at
once) through the campaign machinery of
:mod:`repro.coregen.fault_test` and compared against the golden
signature: equal signature = working unit, divergence or a wedged
simulation = broken unit.
"""

from __future__ import annotations

import numpy as np

from repro.coregen.fault_test import lane_signatures
from repro.errors import PDKError
from repro.netlist.core import Netlist
from repro.netlist.faults import StuckAtFault
from repro.pdk.cells import CellLibrary

from repro.mc.sampling import SubstreamSampler

#: Sampler namespace for defect draws.
DEFECT_DOMAIN = "defects"

#: Signature sentinel for a unit whose simulation wedged (certainly broken).
WEDGED = ("wedged",)


def defect_probabilities(
    netlist: Netlist, library: CellLibrary, device_yield: float
) -> np.ndarray:
    """Per-instance failure probability ``1 - y^devices``."""
    if not 0.0 < device_yield <= 1.0:
        raise PDKError(f"device yield {device_yield} out of (0, 1]")
    devices = np.array(
        [
            library.cell(i.cell).transistors + library.cell(i.cell).resistors
            for i in netlist.instances
        ],
        dtype=np.float64,
    )
    return 1.0 - device_yield**devices


def sample_defects(
    netlist: Netlist,
    library: CellLibrary,
    device_yield: float,
    lo: int,
    hi: int,
    seed: int,
    block: int = 4096,
) -> dict[int, tuple[StuckAtFault, ...]]:
    """Defect sets of printed units ``[lo, hi)``, vectorized.

    Returns only the *defective* units: ``unit index -> tuple of
    stuck-at faults`` (cell-index order).  Cell ``k`` of unit ``i`` is
    defective iff its uniform draw falls below ``p[k]``, and the stuck
    value is bit 0 of the same sampler word (the uniform only consumes
    bits 11..63), so one draw decides both -- and
    :func:`unit_defects` reproduces any unit exactly.
    """
    if hi < lo:
        raise PDKError(f"empty unit range [{lo}, {hi})")
    p = defect_probabilities(netlist, library, device_yield)
    sampler = SubstreamSampler(seed, len(netlist.instances), DEFECT_DOMAIN)
    defects: dict[int, list[StuckAtFault]] = {}
    for start in range(lo, hi, block):
        stop = min(start + block, hi)
        uniforms = sampler.uniforms(start, stop)
        mask = uniforms < p[:, None]
        if not mask.any():
            continue
        bits = sampler.bits(start, stop)
        cell_rows, unit_cols = np.nonzero(mask)
        stuck = bits[cell_rows, unit_cols]
        for k, j, s in zip(
            cell_rows.tolist(), unit_cols.tolist(), stuck.tolist()
        ):
            defects.setdefault(start + j, []).append(
                StuckAtFault(instance_index=k, stuck_value=int(s))
            )
    return {unit: tuple(faults) for unit, faults in defects.items()}


def unit_defects(
    netlist: Netlist,
    library: CellLibrary,
    device_yield: float,
    unit: int,
    seed: int,
) -> tuple[StuckAtFault, ...]:
    """Scalar reference path: one unit's defect set, draw by draw."""
    p = defect_probabilities(netlist, library, device_yield)
    sampler = SubstreamSampler(seed, len(netlist.instances), DEFECT_DOMAIN)
    faults = []
    for k in range(len(netlist.instances)):
        if sampler.uniform(k, unit) < p[k]:
            faults.append(
                StuckAtFault(instance_index=k, stuck_value=sampler.bit(k, unit))
            )
    return tuple(faults)


def safe_signatures(
    program,
    config,
    cycles: int,
    fault_sets: list,
    context=None,
) -> list[tuple]:
    """Lane-packed signatures with wedge isolation.

    A pathological defect set can wedge the whole packed pass (e.g. a
    stuck clock-tree cell).  When the batch raises, bisect it until the
    offending lanes are isolated; a single lane that still raises
    reports :data:`WEDGED` -- that unit is certainly broken.
    """
    if not fault_sets:
        return []
    try:
        return lane_signatures(program, config, cycles, fault_sets, context)
    except Exception:
        if len(fault_sets) == 1:
            return [WEDGED]
        mid = len(fault_sets) // 2
        return safe_signatures(
            program, config, cycles, fault_sets[:mid], context
        ) + safe_signatures(program, config, cycles, fault_sets[mid:], context)
