"""Mergeable log-bucket quantile sketches for streamed shard summaries.

Yield campaign shards must not ship raw samples back to the parent --
10^6 units x 8 bytes per axis is exactly the traffic sharding exists
to avoid.  Each shard instead streams a :class:`QuantileSketch`: a
DDSketch-style map of *relative-error* log buckets (bucket ``i``
covers ``(gamma^(i-1), gamma^i]`` with ``gamma = (1 + alpha) / (1 -
alpha)``) plus exact count / sum / min / max.

Two properties the engine leans on:

* **Relative-accuracy quantiles** -- any quantile comes back within
  ``alpha`` relative error (default 0.5%), which is far inside the
  Monte-Carlo noise of the campaigns themselves;
* **Bit-exact merging** -- a value's bucket index is a pure function
  of the value, and merging is integer bucket-count addition, so the
  merged sketch is *identical* whatever the shard boundaries or worker
  count were.  (The float ``sum`` is accumulated per added block and
  merged in submission order, so equal shard geometry gives equal sums
  too -- the shard-invariance contract tested by
  ``tests/mc/test_engine.py``.)
"""

from __future__ import annotations

import math

import numpy as np

#: Default relative accuracy of reported quantiles.
DEFAULT_ALPHA = 0.005


class QuantileSketch:
    """Log-bucket quantile sketch over positive samples.

    Non-positive samples (a degenerate zero delay) land in a dedicated
    zero bucket and report as 0.0.
    """

    __slots__ = ("alpha", "gamma", "_log_gamma", "buckets", "zeros",
                 "count", "total", "min", "max")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha {alpha} out of (0, 1)")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    # -- ingestion ---------------------------------------------------------

    def add_array(self, values: np.ndarray) -> None:
        """Fold one block of samples in (vectorized bucketing)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self.count += int(values.size)
        self.total += float(values.sum())
        lo = float(values.min())
        hi = float(values.max())
        self.min = lo if self.min is None else min(self.min, lo)
        self.max = hi if self.max is None else max(self.max, hi)
        positive = values[values > 0.0]
        self.zeros += int(values.size - positive.size)
        if positive.size:
            indices = np.ceil(
                np.log(positive) / self._log_gamma
            ).astype(np.int64)
            unique, counts = np.unique(indices, return_counts=True)
            buckets = self.buckets
            for index, n in zip(unique.tolist(), counts.tolist()):
                buckets[index] = buckets.get(index, 0) + n

    def add(self, value: float) -> None:
        """Fold one scalar sample in."""
        self.add_array(np.array([value], dtype=np.float64))

    # -- merging -----------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into self (bucket-count addition); returns self."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {self.alpha} != {other.alpha}"
            )
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        return self

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (relative error <= alpha).

        Deterministic rule: the value of the bucket containing the
        ``ceil(q * count)``-th smallest sample (rank 1 at ``q = 0``),
        estimated at the bucket's harmonic midpoint ``2 * gamma^i /
        (gamma + 1)`` and clamped to the exact observed ``[min, max]``.
        The extreme ranks report the exact tracked extremes.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} out of [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(math.ceil(q * self.count)))
        cumulative = self.zeros
        if rank <= cumulative:
            return 0.0
        if rank >= self.count:
            return self.max
        if rank == 1 and self.zeros == 0:
            return self.min
        value = 0.0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                value = 2.0 * self.gamma**index / (self.gamma + 1.0)
                break
        if self.min is not None:
            value = min(max(value, self.min), self.max)
        return value

    # -- serialization (shards ship dicts through parallel_map) -----------

    def to_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
            "zeros": self.zeros,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        sketch = cls(alpha=payload["alpha"])
        sketch.buckets = {int(i): n for i, n in payload["buckets"].items()}
        sketch.zeros = payload["zeros"]
        sketch.count = payload["count"]
        sketch.total = payload["total"]
        sketch.min = payload["min"]
        sketch.max = payload["max"]
        return sketch
