"""Fleet-scale Monte-Carlo yield engine.

The ROADMAP's "millions of users" north star literally means millions
of printed *device instances*, each with its own process variation and
its own device defects.  This package turns the analytic models of
:mod:`repro.pdk.variation` into a campaign driver that simulates that
fleet:

* :mod:`repro.mc.sampling` -- deterministic counter-based substream
  sampler (one independent stream per cell instance, one draw per
  printed unit) whose scalar and vectorized paths produce bit-identical
  samples, so sharding and trial count never change a unit's dice roll;
* :mod:`repro.mc.timing` -- vectorized variation-aware STA: per-cell
  lognormal delay factors as a ``(cells, instances)`` matrix pushed
  through the levelized row layout of :mod:`repro.netlist.nsim`, one
  ``max``/``add`` pass per logic level for every instance at once;
* :mod:`repro.mc.fyield` -- sampled device defects mapped to stuck-at
  faults and lane-packed through the real netlist
  (:class:`~repro.netlist.lanes.LanePlan` + ``NumpySimulator``), so
  functional yield is measured on the application, not assumed from
  the analytic ``y^n`` formula;
* :mod:`repro.mc.sketch` -- mergeable log-bucket quantile sketches;
  shards stream summaries, not samples, and merging is bucket-count
  addition (bit-exact regardless of worker count);
* :mod:`repro.mc.engine` -- the campaign driver: shards instance
  blocks across :func:`repro.exec.parallel_map` workers and merges
  per-shard sketches into one :class:`~repro.mc.engine.YieldReport`.

CLI: ``python -m repro yield CONFIGS... --instances N --jobs N``.
See docs/MODELS.md ("Monte-Carlo yield engine") for the model and
docs/PARALLELISM.md for the sharding contract.
"""

from repro.mc.engine import YieldReport, YieldSpec, run_yield_campaign
from repro.mc.sampling import SubstreamSampler
from repro.mc.sketch import QuantileSketch
from repro.mc.timing import sample_delays

__all__ = [
    "QuantileSketch",
    "SubstreamSampler",
    "YieldReport",
    "YieldSpec",
    "run_yield_campaign",
    "sample_delays",
]
