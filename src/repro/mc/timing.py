"""Vectorized variation-aware timing: one STA pass, all units at once.

``repro.pdk.variation.monte_carlo_timing`` walks the netlist once per
trial in pure Python -- fine for 24 trials, hopeless for a printed
fleet of 10^5-10^6 units.  This module keeps that walk as the *scalar
reference* and adds the production path: per-cell lognormal delay
factors sampled as a ``(cells, units)`` matrix
(:class:`~repro.mc.sampling.SubstreamSampler`, domain ``"timing"``),
propagated through the levelized row layout already built for the
numpy simulation kernels (:func:`repro.netlist.nsim.levelized_layout`)
-- one vectorized ``maximum``/``add`` pass per logic level computes
every unit's arrival front simultaneously.

Bit-exact against the scalar walk by construction: both paths apply
the same IEEE-754 operations per element (same sample words, same
``exp``/``mul``/``max``/``add`` order), so
``sample_delays(..., lo=0, hi=T)`` equals the ``trials=T`` scalar
sample vector *exactly*, asserted across the sweep by
``tests/mc/test_timing.py``.

The per-(netlist, library) geometry -- level gather indices, base
delays, endpoint rows -- is prepared once and memoized on the netlist
(``mc.timing.cache_hits`` / ``mc.timing.cache_misses``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PDKError
from repro.netlist.core import Netlist, SEQUENTIAL_CELLS
from repro.netlist.nsim import levelized_layout
from repro.obs.metrics import counter as _obs_counter
from repro.pdk.cells import CellLibrary

from repro.mc.sampling import SubstreamSampler

#: Sampler namespace for delay-factor draws.
TIMING_DOMAIN = "timing"

#: Units processed per arrival-matrix pass.  Bounds peak memory at
#: roughly ``(rows + 3 * cells) * block * 8`` bytes (~50-100 MB for
#: sweep cores) while keeping each ufunc call long enough to amortize
#: dispatch.
DEFAULT_BLOCK = 2048

_KERNEL_HITS = _obs_counter("mc.timing.cache_hits")
_KERNEL_MISSES = _obs_counter("mc.timing.cache_misses")


@dataclass(frozen=True)
class _Level:
    """Gather geometry for one logic level of the arrival pass."""

    lo: int  # output row range [lo, hi) -- contiguous by layout
    hi: int
    in1: np.ndarray  # first-input row per instance
    in2: np.ndarray  # second-input row (== in1 for 1-input cells)
    base: np.ndarray  # worst-edge base delay per instance
    streams: np.ndarray  # sampler stream (instance index) per instance


@dataclass(frozen=True)
class TimingKernel:
    """Prepared arrival-propagation geometry for one (netlist, library).

    Attributes:
        rows: Arrival-matrix row count (== net count).
        cells: Instance count (sampler stream count).
        levels: Per-level gather geometry, dependency order.
        flop_rows: Q-output rows seeded with the clk-to-Q launch.
        flop_base: Worst-edge base delay per sequential instance.
        flop_streams: Sampler stream per sequential instance.
        endpoint_rows: Rows maximized into the critical delay (flop
            inputs plus primary output nets).
    """

    rows: int
    cells: int
    levels: tuple[_Level, ...]
    flop_rows: np.ndarray
    flop_base: np.ndarray
    flop_streams: np.ndarray
    endpoint_rows: np.ndarray


def timing_kernel(netlist: Netlist, library: CellLibrary) -> TimingKernel:
    """The memoized :class:`TimingKernel` for ``netlist`` + ``library``."""
    cache: dict = getattr(netlist, "_mc_timing", None) or {}
    kernel = cache.get(library.name)
    if kernel is not None:
        _KERNEL_HITS.inc()
        return kernel
    _KERNEL_MISSES.inc()

    layout, levels = levelized_layout(netlist)
    row_of = layout.row_of
    index_of = {id(inst): k for k, inst in enumerate(netlist.instances)}
    base_delay = [library.cell(i.cell).worst_delay for i in netlist.instances]

    level_geometry = []
    for instances in levels:
        if not instances:
            continue
        lo = row_of[instances[0].output]
        level_geometry.append(
            _Level(
                lo=lo,
                hi=lo + len(instances),
                in1=np.array(
                    [row_of[i.inputs[0]] for i in instances], dtype=np.intp
                ),
                in2=np.array(
                    [
                        row_of[i.inputs[1] if len(i.inputs) > 1 else i.inputs[0]]
                        for i in instances
                    ],
                    dtype=np.intp,
                ),
                base=np.array(
                    [base_delay[index_of[id(i)]] for i in instances],
                    dtype=np.float64,
                ),
                streams=np.array(
                    [index_of[id(i)] for i in instances], dtype=np.intp
                ),
            )
        )

    flops = [i for i in netlist.instances if i.cell in SEQUENTIAL_CELLS]
    endpoint_nets: set[int] = set()
    for flop in flops:
        endpoint_nets.update(flop.inputs)
    for bus in netlist.outputs.values():
        endpoint_nets.update(bus.nets)

    kernel = TimingKernel(
        rows=layout.rows,
        cells=len(netlist.instances),
        levels=tuple(level_geometry),
        flop_rows=np.array([row_of[f.output] for f in flops], dtype=np.intp),
        flop_base=np.array(
            [base_delay[index_of[id(f)]] for f in flops], dtype=np.float64
        ),
        flop_streams=np.array(
            [index_of[id(f)] for f in flops], dtype=np.intp
        ),
        endpoint_rows=np.array(
            sorted(row_of[net] for net in endpoint_nets), dtype=np.intp
        ),
    )
    cache[library.name] = kernel
    netlist._mc_timing = cache
    return kernel


def _propagate(kernel: TimingKernel, factors: np.ndarray) -> np.ndarray:
    """Critical delay per unit for one ``(cells, n)`` factor block."""
    n = factors.shape[1]
    arrival = np.zeros((kernel.rows, n), dtype=np.float64)
    if kernel.flop_rows.size:
        arrival[kernel.flop_rows] = (
            kernel.flop_base[:, None] * factors[kernel.flop_streams]
        )
    for level in kernel.levels:
        arrival[level.lo : level.hi] = (
            np.maximum(arrival[level.in1], arrival[level.in2])
            + level.base[:, None] * factors[level.streams]
        )
    if not kernel.endpoint_rows.size:
        return np.zeros(n, dtype=np.float64)
    return arrival[kernel.endpoint_rows].max(axis=0)


def sample_delays(
    netlist: Netlist,
    library: CellLibrary,
    sigma: float,
    lo: int,
    hi: int,
    seed: int,
    block: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """Critical-path delay of printed units ``[lo, hi)``, vectorized.

    Unit ``i``'s per-cell lognormal factors ``exp(sigma * N(0,1))``
    depend only on ``(seed, cell, i)`` -- the stream-split scheme of
    :mod:`repro.mc.sampling` -- so any sub-range reproduces the same
    units regardless of how a campaign was blocked or sharded, and the
    result is bit-identical to the scalar reference walk
    (:func:`repro.pdk.variation.monte_carlo_timing`) at equal indices.
    """
    if sigma < 0:
        raise PDKError("sigma must be non-negative")
    if hi < lo:
        raise PDKError(f"empty unit range [{lo}, {hi})")
    kernel = timing_kernel(netlist, library)
    sampler = SubstreamSampler(seed, kernel.cells, TIMING_DOMAIN)
    out = np.empty(hi - lo, dtype=np.float64)
    for start in range(lo, hi, block):
        stop = min(start + block, hi)
        factors = np.exp(sigma * sampler.normals(start, stop))
        out[start - lo : stop - lo] = _propagate(kernel, factors)
    return out


def nominal_delay(netlist: Netlist, library: CellLibrary) -> float:
    """Critical delay with every factor pinned to 1 (sigma = 0)."""
    kernel = timing_kernel(netlist, library)
    factors = np.ones((kernel.cells, 1), dtype=np.float64)
    return float(_propagate(kernel, factors)[0])
