"""Deterministic counter-based substream sampling for Monte-Carlo runs.

The old ``repro.pdk.variation._lcg_gauss`` drew every sample from one
sequential LCG stream, so the factor assigned to cell ``k`` in trial
``t`` depended on *how many draws happened before it* -- changing the
trial count, the instance order, or the shard boundary silently
re-diced every unit.  This module replaces it with a **stream-split
counter scheme**: every sample is a pure hash of its coordinates, so
any sub-range of units can be generated independently and identically.

Stream-split scheme
-------------------

A sample is addressed by ``(seed, domain, stream, index)``:

* ``seed`` -- the campaign seed (any Python int; masked to 64 bits);
* ``domain`` -- a short string namespace (``"timing"``,
  ``"defects"``) hashed with FNV-1a so different uses of the same
  seed never collide;
* ``stream`` -- the per-cell substream id (instance position in
  ``netlist.instances``);
* ``index`` -- the draw counter within the stream (the global printed
  *unit* index -- never a shard-relative one).

Key derivation is SplitMix64: the per-stream key is
``mix64(mix64(seed ^ fnv(domain)) + (stream + 1) * GOLDEN)`` and the
word for draw ``n`` is ``mix64(key + n * GOLDEN)``, where ``mix64`` is
the SplitMix64 finalizer and ``GOLDEN`` is its odd increment
(0x9E3779B97F4A7C15).  Uniforms take the top 53 bits
(``((word >> 11) + 0.5) * 2**-53``, never 0 or 1); normals are
Box-Muller over two consecutive draws (``n = 2*index`` and
``2*index + 1``).

Scalar == vectorized, bit-exact
-------------------------------

Both paths compute the *same* IEEE-754 operations on the same 64-bit
words: the vectorized path uses ``uint64`` array arithmetic (wrapping
multiply/add) and numpy ufuncs; the scalar reference path computes the
words with Python integers masked to 64 bits and then applies the same
``np.log``/``np.cos``/``np.sqrt`` ufuncs to ``np.float64`` scalars.
Numpy ufuncs are value-deterministic across array shapes (and
``math.log`` is *not* guaranteed to match ``np.log``, which is why the
scalar path routes through numpy), so ``normal(s, i)`` equals
``normals(lo, hi)[s, i - lo]`` exactly -- asserted by
``tests/mc/test_sampling.py``.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import counter as _obs_counter

_MASK64 = (1 << 64) - 1

#: SplitMix64 odd increment (golden-ratio constant).
_GOLDEN = 0x9E3779B97F4A7C15

#: FNV-1a 64-bit offset basis / prime, for hashing domain strings.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

_TWO_PI = 6.283185307179586
_U53 = 2.0**-53

_KEY_CACHE_HITS = _obs_counter("mc.sampler.cache_hits")
_KEY_CACHE_MISSES = _obs_counter("mc.sampler.cache_misses")

#: Per-process memo of derived stream-key vectors.  Key derivation is
#: two mix rounds per stream -- cheap, but the timing engine asks for
#: the same (seed, domain, streams) triple once per instance block, so
#: campaigns over 10^5-10^6 units hit this dict thousands of times.
_KEY_CACHE: dict[tuple[int, str, int], np.ndarray] = {}


def _fnv1a(text: str) -> int:
    value = _FNV_OFFSET
    for byte in text.encode():
        value = ((value ^ byte) * _FNV_PRIME) & _MASK64
    return value


def _mix64(x: int) -> int:
    """SplitMix64 finalizer over Python ints (exact 64-bit wrap)."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _mix64_array(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wrapping arithmetic)."""
    x = x.copy()
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def _base_key(seed: int, domain: str) -> int:
    return _mix64((seed & _MASK64) ^ _fnv1a(domain))


def stream_keys(seed: int, streams: int, domain: str) -> np.ndarray:
    """Per-stream SplitMix64 keys, memoized per (seed, domain, count).

    The returned array is shared -- treat it as read-only.
    """
    cache_key = (seed & _MASK64, domain, streams)
    keys = _KEY_CACHE.get(cache_key)
    if keys is not None:
        _KEY_CACHE_HITS.inc()
        return keys
    _KEY_CACHE_MISSES.inc()
    base = _base_key(seed, domain)
    ids = np.arange(1, streams + 1, dtype=np.uint64)
    keys = _mix64_array(np.uint64(base) + ids * np.uint64(_GOLDEN))
    keys.setflags(write=False)
    _KEY_CACHE[cache_key] = keys
    return keys


def clear_key_cache() -> None:
    """Drop memoized stream keys (tests; bounded memory hygiene)."""
    _KEY_CACHE.clear()


class SubstreamSampler:
    """Per-stream counter-based sampler for one (seed, domain) pair.

    Args:
        seed: Campaign seed (any int).
        streams: Number of independent substreams (e.g. cell count).
        domain: Namespace string separating different uses of the same
            seed (timing factors vs defect draws).

    ``normals(lo, hi)`` returns the ``(streams, hi - lo)`` matrix of
    standard-normal draws for unit indices ``[lo, hi)``; ``normal(s,
    i)`` is the scalar reference returning the identical value.  The
    same pairing holds for ``uniforms``/``uniform`` (one word per
    index; bit 0 of the same word is exposed as ``bits``/``bit`` for
    auxiliary coin flips -- the uniform only consumes bits 11..63).
    """

    def __init__(self, seed: int, streams: int, domain: str) -> None:
        self.seed = seed & _MASK64
        self.streams = streams
        self.domain = domain
        self.keys = stream_keys(seed, streams, domain)

    # -- word generation ---------------------------------------------------

    def _words(self, counters: np.ndarray) -> np.ndarray:
        """Words for a ``(count,)`` counter vector, all streams at once."""
        return _mix64_array(
            self.keys[:, None] + counters[None, :] * np.uint64(_GOLDEN)
        )

    def _word(self, stream: int, counter: int) -> int:
        return _mix64(int(self.keys[stream]) + counter * _GOLDEN)

    # -- uniforms ----------------------------------------------------------

    def uniforms(self, lo: int, hi: int) -> np.ndarray:
        """Uniform(0,1) matrix for unit indices ``[lo, hi)``."""
        words = self._words(np.arange(lo, hi, dtype=np.uint64))
        return ((words >> np.uint64(11)).astype(np.float64) + 0.5) * _U53

    def uniform(self, stream: int, index: int) -> float:
        """Scalar reference for ``uniforms(lo, hi)[stream, index - lo]``."""
        word = self._word(stream, index)
        return float(((word >> 11) + 0.5) * _U53)

    def bits(self, lo: int, hi: int) -> np.ndarray:
        """Bit 0 of each unit's word (independent of its uniform)."""
        words = self._words(np.arange(lo, hi, dtype=np.uint64))
        return (words & np.uint64(1)).astype(np.uint8)

    def bit(self, stream: int, index: int) -> int:
        """Scalar reference for ``bits(lo, hi)[stream, index - lo]``."""
        return self._word(stream, index) & 1

    # -- normals -----------------------------------------------------------

    def normals(self, lo: int, hi: int) -> np.ndarray:
        """Standard-normal matrix for unit indices ``[lo, hi)``.

        Box-Muller over draw counters ``2*index`` and ``2*index + 1``.
        """
        counters = np.arange(lo, hi, dtype=np.uint64) * np.uint64(2)
        w1 = self._words(counters)
        w2 = self._words(counters + np.uint64(1))
        u1 = ((w1 >> np.uint64(11)).astype(np.float64) + 0.5) * _U53
        u2 = ((w2 >> np.uint64(11)).astype(np.float64) + 0.5) * _U53
        return np.sqrt(-2.0 * np.log(u1)) * np.cos(_TWO_PI * u2)

    def normal(self, stream: int, index: int) -> float:
        """Scalar reference for ``normals(lo, hi)[stream, index - lo]``.

        Computes the words with exact Python-int arithmetic, then the
        float transform with numpy *scalar* ufuncs -- the same
        operations the vectorized path applies element-wise, so the
        result is bit-identical (``math.log`` would not be).
        """
        w1 = self._word(stream, 2 * index)
        w2 = self._word(stream, 2 * index + 1)
        u1 = np.float64(((w1 >> 11) + 0.5) * _U53)
        u2 = np.float64(((w2 >> 11) + 0.5) * _U53)
        return float(np.sqrt(-2.0 * np.log(u1)) * np.cos(_TWO_PI * u2))
