"""Fleet-scale Monte-Carlo yield campaigns: sample, shard, merge.

One campaign prints a virtual fleet of ``N`` units of a core
configuration and reports what a print run would actually deliver:

* **fmax distribution** -- vectorized variation-aware timing
  (:mod:`repro.mc.timing`) gives every unit's critical delay; the
  report carries nominal fmax plus fleet quantiles.
* **Functional yield** -- sampled device defects are lane-packed
  through the real netlist (:mod:`repro.mc.fyield`); a unit *works*
  when the application's architectural signature matches the healthy
  core, so the measured yield sits above the analytic defect-free
  probability ``y^n`` by exactly the undetected-fault margin.
* **Economics** -- printed area per working unit, and battery
  lifetime quantiles (lifetime is linear in critical delay at fixed
  duty, so fleet delay quantiles map straight onto lifetime ones).

Sharding: units are split into fixed ``[lo, hi)`` blocks of
``spec.block`` and fanned across :func:`repro.exec.parallel_map`
workers with a warm initializer that builds the per-spec context
(netlist, program, golden signature) once per worker.  Every sample is
a pure function of ``(seed, cell, unit)`` and shard summaries are
mergeable :class:`~repro.mc.sketch.QuantileSketch` instances folded in
submission order, so the merged report is **bit-identical for any
``--jobs``** -- the shard geometry depends only on ``spec.block``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import partial

from repro import obs
from repro.coregen.config import CoreConfig
from repro.coregen.fault_test import golden_signature, prepare_context
from repro.dse.sweep import evaluate_design
from repro.exec import parallel_map
from repro.netlist.stats import area_report
from repro.pdk import canonical_technology, technology_library
from repro.power.battery import battery_by_name
from repro.programs import build_benchmark
from repro.sim.machine import Machine
from repro.units import to_hours

from repro.mc.fyield import WEDGED, sample_defects, safe_signatures
from repro.mc.sketch import QuantileSketch
from repro.mc.timing import DEFAULT_BLOCK, nominal_delay, sample_delays

#: Defective units lane-packed per numpy simulation pass.
DEFAULT_LANES = 1024

#: Fleet quantiles reported for fmax and lifetime.
REPORT_QUANTILES = (0.01, 0.05, 0.50, 0.95, 0.99)

#: Normal z for the 95% Wilson interval on functional yield.
_WILSON_Z = 1.96

_INSTANCE_RATE = obs.histogram("mc.instances.per_second")
_SHARDS = obs.counter("mc.shards")


@dataclass(frozen=True)
class YieldSpec:
    """Everything that determines a campaign except fleet size and jobs.

    Value-typed and hashable on purpose: workers memoize their
    prepared context keyed on the spec, and two equal specs must
    produce bit-identical fleets.

    Attributes:
        config: Core configuration to print.
        technology: ``"EGFET"`` or ``"CNT"`` (aliases accepted).
        program_name: Benchmark run as the functional test.
        program_width: Benchmark kernel width.
        sigma: Lognormal delay-variation sigma.
        device_yield: Per printed device (transistor/resistor) yield.
        seed: Root seed of every sampler substream.
        lanes: Defective units simulated per packed pass.
        block: Units per shard (and per timing block) -- fixes the
            shard geometry independently of worker count.
        duty: Duty fraction for battery-lifetime numbers.
        battery_name: Printed battery (partial name match).
    """

    config: CoreConfig
    technology: str = "EGFET"
    program_name: str = "mult"
    program_width: int = 8
    sigma: float = 0.2
    device_yield: float = 0.9999
    seed: int = 0xBEEF
    lanes: int = DEFAULT_LANES
    block: int = DEFAULT_BLOCK
    duty: float = 0.01
    battery_name: str = "Molex"


@dataclass
class _SpecContext:
    """Per-spec invariants a worker prepares once (then per-chunk reuse)."""

    program: object
    library: object
    campaign: object  # fault_test campaign context (netlist, ROM, ...)
    cycles: int
    golden: tuple


# One-slot per-spec context memo, mirroring fault_test's worker memo:
# every shard of a campaign shares the spec, so each worker elaborates
# the core and runs the golden reference exactly once.
_WORKER_CONTEXT: tuple[YieldSpec, _SpecContext] | None = None


def _spec_context(spec: YieldSpec) -> _SpecContext:
    global _WORKER_CONTEXT
    if _WORKER_CONTEXT is None or _WORKER_CONTEXT[0] != spec:
        program = build_benchmark(
            spec.program_name,
            spec.program_width,
            spec.config.datawidth,
            num_bars=spec.config.num_bars,
        )
        machine = Machine(program, num_bars=spec.config.num_bars)
        machine.run()
        cycles = machine.stats.instructions
        context = _SpecContext(
            program=program,
            library=technology_library(spec.technology),
            campaign=prepare_context(program, spec.config),
            cycles=cycles,
            golden=golden_signature(program, spec.config, cycles),
        )
        _WORKER_CONTEXT = (spec, context)
    return _WORKER_CONTEXT[1]


def _run_shard(spec: YieldSpec, shard: tuple[int, int]) -> dict:
    """One unit block: timing sketch + defect simulation tallies."""
    lo, hi = shard
    context = _spec_context(spec)
    netlist = context.campaign.netlist
    delays = sample_delays(
        netlist, context.library, spec.sigma, lo, hi, spec.seed, block=spec.block
    )
    sketch = QuantileSketch()
    sketch.add_array(delays)

    defects = sample_defects(
        netlist, context.library, spec.device_yield, lo, hi, spec.seed,
        block=spec.block,
    )
    units = sorted(defects)
    working_defective = 0
    wedged = 0
    for start in range(0, len(units), spec.lanes):
        batch = units[start : start + spec.lanes]
        signatures = safe_signatures(
            context.program,
            spec.config,
            context.cycles,
            [defects[unit] for unit in batch],
            context.campaign,
        )
        for signature in signatures:
            if signature == WEDGED:
                wedged += 1
            elif signature == context.golden:
                working_defective += 1
    return {
        "sketch": sketch.to_dict(),
        "units": hi - lo,
        "defective": len(units),
        "working_defective": working_defective,
        "wedged": wedged,
    }


def _wilson_interval(successes: int, n: int, z: float = _WILSON_Z) -> tuple[float, float]:
    """95% Wilson score interval for a binomial proportion."""
    if n == 0:
        return (0.0, 1.0)
    phat = successes / n
    denom = 1.0 + z * z / n
    center = (phat + z * z / (2 * n)) / denom
    margin = (
        z * math.sqrt(phat * (1.0 - phat) / n + z * z / (4.0 * n * n)) / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


@dataclass(frozen=True)
class YieldReport:
    """Merged result of one fleet campaign.

    Attributes:
        design / technology / program: Campaign identity.
        instances: Fleet size sampled.
        seed / sigma / device_yield: Sampling parameters.
        nominal_fmax: 1 / variation-free critical delay (Hz).
        mean_delay: Fleet mean critical delay (s), exact.
        fmax_quantiles: ``q -> Hz``; the fraction ``q`` of units is
            *slower* than this clock (``fmax_q(p) = 1 / delay_q(1-p)``).
        devices: Printed device count (transistors + resistors).
        analytic_yield: Defect-free probability ``y^devices``.
        defective / wedged / working_defective: Defect tallies;
            ``working_defective`` units carry defects the program never
            exposes -- they ship.
        functional_yield: Working fraction (defect-free + undetected).
        yield_ci: 95% Wilson interval on ``functional_yield``.
        area / cost_per_working_unit: Printed area economics (m^2).
        battery / duty: Lifetime scenario.
        lifetime_quantiles: ``q -> hours`` (linear in delay quantiles).
        instances_per_second / wall_seconds / shards / jobs: Throughput.
        delay_sketch: Merged delay sketch (serialized) for re-querying.
    """

    design: str
    technology: str
    program: str
    instances: int
    seed: int
    sigma: float
    device_yield: float
    nominal_fmax: float
    mean_delay: float
    fmax_quantiles: dict
    devices: int
    analytic_yield: float
    defective: int
    wedged: int
    working_defective: int
    functional_yield: float
    yield_ci: tuple
    area: float
    cost_per_working_unit: float
    battery: str
    duty: float
    lifetime_quantiles: dict
    instances_per_second: float
    wall_seconds: float
    shards: int
    jobs: int
    delay_sketch: dict

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "technology": self.technology,
            "program": self.program,
            "instances": self.instances,
            "seed": self.seed,
            "sigma": self.sigma,
            "device_yield": self.device_yield,
            "nominal_fmax": self.nominal_fmax,
            "mean_delay": self.mean_delay,
            "fmax_quantiles": {str(q): v for q, v in self.fmax_quantiles.items()},
            "devices": self.devices,
            "analytic_yield": self.analytic_yield,
            "defective": self.defective,
            "wedged": self.wedged,
            "working_defective": self.working_defective,
            "functional_yield": self.functional_yield,
            "yield_ci": list(self.yield_ci),
            "area": self.area,
            "cost_per_working_unit": self.cost_per_working_unit,
            "battery": self.battery,
            "duty": self.duty,
            "lifetime_quantiles": {
                str(q): v for q, v in self.lifetime_quantiles.items()
            },
            "instances_per_second": self.instances_per_second,
            "wall_seconds": self.wall_seconds,
            "shards": self.shards,
            "jobs": self.jobs,
            "delay_sketch": self.delay_sketch,
        }

    def render(self) -> str:
        lo, hi = self.yield_ci
        lines = [
            f"yield[{self.design} @ {self.technology}, {self.program}] "
            f"{self.instances} units, seed 0x{self.seed:X}",
            f"  timing   : nominal {self.nominal_fmax:.1f} Hz, "
            f"fmax p05 {self.fmax_quantiles[0.05]:.1f} Hz, "
            f"p50 {self.fmax_quantiles[0.5]:.1f} Hz, "
            f"p95 {self.fmax_quantiles[0.95]:.1f} Hz (sigma {self.sigma})",
            f"  yield    : functional {self.functional_yield:.4f} "
            f"[{lo:.4f}, {hi:.4f}] vs analytic {self.analytic_yield:.4f} "
            f"(y={self.device_yield} over {self.devices} devices; "
            f"{self.defective} defective, {self.working_defective} of them "
            f"ship, {self.wedged} wedged)",
            f"  economics: {self.cost_per_working_unit * 1e4:.2f} cm2 of "
            f"print per working unit "
            f"({self.area * 1e4:.2f} cm2 per print)",
            f"  lifetime : p05 {self.lifetime_quantiles[0.05]:.1f} h, "
            f"p50 {self.lifetime_quantiles[0.5]:.1f} h on {self.battery} "
            f"at {self.duty:.0%} duty",
            f"  engine   : {self.instances_per_second:,.0f} units/s over "
            f"{self.shards} shards, jobs={self.jobs}, "
            f"{self.wall_seconds:.2f} s",
        ]
        return "\n".join(lines)


def run_yield_campaign(
    spec: YieldSpec, instances: int, jobs: int | None = None
) -> YieldReport:
    """Print a virtual fleet of ``instances`` units and measure it.

    Bit-identical for any ``jobs``: shard boundaries come from
    ``spec.block`` alone, shard sketches merge by integer bucket
    addition in submission order, and every sample depends only on
    ``(spec.seed, cell, unit)``.
    """
    if instances < 1:
        raise ValueError(f"need at least one instance, got {instances}")
    technology = canonical_technology(spec.technology)
    with obs.span(
        "yield_campaign",
        design=spec.config.name,
        technology=technology,
        program=spec.program_name,
    ) as sp:
        started = time.perf_counter()
        context = _spec_context(spec)
        shards = [
            (lo, min(lo + spec.block, instances))
            for lo in range(0, instances, spec.block)
        ]
        results = parallel_map(
            partial(_run_shard, spec),
            shards,
            jobs=jobs,
            label=f"yield[{spec.config.name}]",
            warm=partial(_spec_context, spec),
        )

        merged = QuantileSketch()
        defective = working_defective = wedged = 0
        for result in results:
            merged.merge(QuantileSketch.from_dict(result["sketch"]))
            defective += result["defective"]
            working_defective += result["working_defective"]
            wedged += result["wedged"]
        working = (instances - defective) + working_defective
        functional = working / instances

        netlist = context.campaign.netlist
        area = area_report(netlist, context.library)
        devices = area.transistors + area.resistors
        point = evaluate_design(spec.config, technology)
        energy_per_cycle = point.power_at_fmax / point.fmax
        battery = battery_by_name(spec.battery_name)
        # Lifetime at duty d: battery energy / (energy_per_cycle * fmax
        # * d) -- linear in delay, so fleet delay quantiles transform
        # directly (slow units clock lower and live longer).
        hours_per_delay = to_hours(
            battery.energy / (energy_per_cycle * spec.duty)
        )
        fmax_quantiles = {
            q: 1.0 / merged.quantile(1.0 - q) for q in REPORT_QUANTILES
        }
        lifetime_quantiles = {
            q: hours_per_delay * merged.quantile(q) for q in REPORT_QUANTILES
        }

        elapsed = time.perf_counter() - started
        rate = instances / elapsed if elapsed > 0 else 0.0
        _INSTANCE_RATE.observe(rate)
        _SHARDS.inc(len(shards))
        sp.note(instances=instances, working=working, shards=len(shards))

        from repro.exec.engine import resolve_jobs

        return YieldReport(
            design=spec.config.name,
            technology=technology,
            program=context.program.name,
            instances=instances,
            seed=spec.seed,
            sigma=spec.sigma,
            device_yield=spec.device_yield,
            nominal_fmax=1.0 / nominal_delay(netlist, context.library),
            mean_delay=merged.mean,
            fmax_quantiles=fmax_quantiles,
            devices=devices,
            analytic_yield=spec.device_yield**devices,
            defective=defective,
            wedged=wedged,
            working_defective=working_defective,
            functional_yield=functional,
            yield_ci=_wilson_interval(working, instances),
            area=point.area,
            cost_per_working_unit=(
                point.area / functional if functional > 0 else float("inf")
            ),
            battery=battery.name,
            duty=spec.duty,
            lifetime_quantiles=lifetime_quantiles,
            instances_per_second=rate,
            wall_seconds=elapsed,
            shards=len(shards),
            jobs=resolve_jobs(jobs),
            delay_sketch=merged.to_dict(),
        )
