"""Threshold kernel: count array elements at or above a threshold.

A BAR-indexed loop over the 16-element array; each iteration points
BAR 1 at the current element, trial-subtracts the threshold into a
scratch word, and bumps the count when no borrow occurred
(element >= threshold).  The native-width form compares with a single
CMP -- no scratch traffic at all.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.isa.program import Program
from repro.isa.spec import MemOperand, Mnemonic
from repro.programs.builder import KernelBuilder
from repro.programs.common import ARRAY_ELEMENTS, deterministic_values


def default_inputs(kernel_width: int) -> tuple[list[int], int]:
    """Deterministic default (values, threshold) pair."""
    values = deterministic_values(
        seed=0x70 + kernel_width, count=ARRAY_ELEMENTS, bits=kernel_width
    )
    threshold = 1 << (kernel_width - 1)
    return values, threshold


def build(
    kernel_width: int,
    core_width: int,
    num_bars: int = 2,
    values: list[int] | None = None,
    threshold: int | None = None,
) -> Program:
    """Build the threshold kernel; the count lands in ``count``."""
    if num_bars < 2:
        raise ProgramError("tHold needs at least one settable BAR")
    default_values, default_threshold = default_inputs(kernel_width)
    values = default_values if values is None else values
    threshold = default_threshold if threshold is None else threshold

    builder = KernelBuilder(
        f"tHold{kernel_width}", kernel_width, core_width, num_bars
    )
    wpv = builder.words_per_value
    arr = builder.alloc("arr", elements=len(values), init=values)
    thresh = builder.alloc("threshold", init=threshold)
    count = builder.alloc("count", init=0, scalar=True)
    ptr = builder.alloc("ptr", scalar=True, init=arr.base)
    remaining = builder.alloc("remaining", scalar=True, init=len(values))
    step = builder.alloc("step", scalar=True, init=wpv)
    scratch = builder.alloc("scratch") if wpv > 1 else None
    one = builder.one

    builder.label("loop")
    builder.setbar(1, ptr)
    if wpv == 1:
        builder.op(Mnemonic.CMP, MemOperand(0, bar=1), thresh.word(0))
    else:
        for word in range(wpv):
            builder.op(Mnemonic.XOR, scratch.word(word), scratch.word(word))
            builder.op(Mnemonic.OR, scratch.word(word), MemOperand(word, bar=1))
        builder.mw_sub(scratch, thresh)
    builder.branch(Mnemonic.BRN, "below", mask=2)  # C == 0: element < thresh
    builder.op(Mnemonic.ADD, count.word(0), one.word(0))
    builder.label("below")
    builder.op(Mnemonic.ADD, ptr.word(0), step.word(0))
    builder.op(Mnemonic.SUB, remaining.word(0), one.word(0))
    builder.branch(Mnemonic.BRN, "loop", mask=4)  # while remaining != 0
    builder.halt()
    return builder.finish(
        description=f"count of {kernel_width}-bit elements >= threshold "
        f"on a {core_width}-bit core"
    )


def reference(values: list[int], threshold: int) -> int:
    """Golden model: elements at or above the threshold."""
    return sum(1 for value in values if value >= threshold)
