"""Shift-add multiply kernel.

Computes the low ``kernel_width`` bits of ``a * b`` by the classic
shift-add loop: each iteration shifts the multiplier right (the dropped
bit lands in C), conditionally accumulates the multiplicand, then
shifts the multiplicand left.  On cores narrower than the kernel width
every shift/add is a carry-chained multi-word sequence -- this kernel
is the paper's showcase for data coalescing.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.isa.spec import Mnemonic
from repro.programs.builder import KernelBuilder
from repro.programs.common import deterministic_values

#: Default operand values per kernel width (deterministic).
DEFAULT_INPUTS = {
    width: tuple(deterministic_values(seed=0xA0 + width, count=2, bits=width))
    for width in (8, 16, 32)
}


def build(
    kernel_width: int,
    core_width: int,
    num_bars: int = 2,
    a: int | None = None,
    b: int | None = None,
) -> Program:
    """Build the multiply kernel.

    Args:
        kernel_width: Operand width in bits (8, 16, or 32).
        core_width: Target core datawidth (must divide kernel width).
        num_bars: BAR configuration (the kernel itself needs none).
        a: Multiplicand (defaults to a deterministic input).
        b: Multiplier (defaults to a deterministic input).

    The product is left in the ``product`` variable (low
    ``kernel_width`` bits, as in C unsigned multiplication).
    """
    default_a, default_b = DEFAULT_INPUTS[kernel_width]
    a = default_a if a is None else a
    b = default_b if b is None else b

    builder = KernelBuilder(
        f"mult{kernel_width}", kernel_width, core_width, num_bars
    )
    multiplicand = builder.alloc("multiplicand", init=a)
    multiplier = builder.alloc("multiplier", init=b)
    product = builder.alloc("product", init=0)
    count = builder.alloc_counter("count", kernel_width)

    builder.label("loop")
    builder.mw_shift_right(multiplier)  # C = dropped multiplier LSB
    builder.branch(Mnemonic.BRN, "skip_add", mask=2)  # skip when C == 0
    builder.mw_add(product, multiplicand)
    builder.label("skip_add")
    builder.mw_shift_left(multiplicand)
    builder.dec_and_branch_nonzero(count, "loop")
    builder.halt()
    return builder.finish(
        description=f"{kernel_width}-bit shift-add multiply on a "
        f"{core_width}-bit core"
    )


def reference(a: int, b: int, kernel_width: int) -> int:
    """Golden model: low ``kernel_width`` bits of the product."""
    return (a * b) & ((1 << kernel_width) - 1)
