"""Benchmark registry: which kernels run at which configurations.

Mirrors the paper's Section 8 matrix: every kernel has 8-, 16-, and
32-bit data versions (CRC8 is 8-bit only); a version runs on cores of
equal width, on narrower cores via data coalescing, and on wider cores
directly -- except the decision tree, which deliberately avoids
coalescing and therefore only runs at its native width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ProgramError
from repro.isa.program import Program
from repro.programs import crc8, div, dtree, insort, intavg, mult, thold

#: Core datawidths swept by the paper (Section 5.2).
CORE_WIDTHS = (4, 8, 16, 32)

#: Kernel data widths evaluated in Figure 8 / Table 8.
KERNEL_WIDTHS = (8, 16, 32)


@dataclass(frozen=True)
class BenchmarkSpec:
    """One kernel's registry entry.

    Attributes:
        name: Canonical benchmark name (paper spelling).
        build: ``build(kernel_width, core_width, num_bars)`` factory.
        kernel_widths: Data widths this kernel exists at.
        min_core_width: Narrowest core that can run it (loop kernels
            hold data-memory pointers in a single word, so they need
            at least 8-bit words).
        native_only: True when the kernel refuses data coalescing
            (decision tree).
        uses_bars: Whether the kernel needs a settable BAR.
    """

    name: str
    build: Callable[..., Program]
    kernel_widths: tuple[int, ...] = KERNEL_WIDTHS
    min_core_width: int = 4
    native_only: bool = False
    uses_bars: bool = False

    def supports(self, kernel_width: int, core_width: int) -> bool:
        """Whether this kernel/core pairing is runnable."""
        if kernel_width not in self.kernel_widths:
            return False
        if core_width < self.min_core_width:
            return False
        if self.native_only:
            return core_width == kernel_width
        return kernel_width % core_width == 0 or core_width % kernel_width == 0


#: All seven paper benchmarks, keyed by canonical name.
BENCHMARKS: dict[str, BenchmarkSpec] = {
    "mult": BenchmarkSpec("mult", mult.build),
    "div": BenchmarkSpec("div", div.build),
    "inSort": BenchmarkSpec(
        "inSort", insort.build, min_core_width=8, uses_bars=True
    ),
    "intAvg": BenchmarkSpec("intAvg", intavg.build),
    "tHold": BenchmarkSpec(
        "tHold", thold.build, min_core_width=8, uses_bars=True
    ),
    "crc8": BenchmarkSpec(
        "crc8", crc8.build, kernel_widths=(8,), min_core_width=8,
        native_only=True, uses_bars=True,
    ),
    "dTree": BenchmarkSpec(
        "dTree", dtree.build, min_core_width=8, native_only=True
    ),
}


def build_benchmark(
    name: str, kernel_width: int, core_width: int, num_bars: int = 2
) -> Program:
    """Build one registered benchmark at one configuration.

    Raises:
        ProgramError: If the benchmark does not exist or the
            configuration is unsupported.
    """
    spec = BENCHMARKS.get(name)
    if spec is None:
        raise ProgramError(f"unknown benchmark {name!r}")
    if not spec.supports(kernel_width, core_width):
        raise ProgramError(
            f"{name}{kernel_width} does not run on a {core_width}-bit core"
        )
    return spec.build(kernel_width, core_width, num_bars)


def runnable_configurations(name: str) -> list[tuple[int, int]]:
    """All (kernel_width, core_width) pairs a benchmark supports."""
    spec = BENCHMARKS.get(name)
    if spec is None:
        raise ProgramError(f"unknown benchmark {name!r}")
    return [
        (kernel_width, core_width)
        for kernel_width in spec.kernel_widths
        for core_width in CORE_WIDTHS
        if spec.supports(kernel_width, core_width)
    ]
