"""Kernel code-generation infrastructure.

:class:`KernelBuilder` is a small macro-assembler used by the benchmark
kernels: it allocates data-memory variables, tracks label fixups, and
-- crucially -- emits *multi-word* operations built from the ISA's
data-coalescing instructions (ADC, SBB, RLC, RRC), which is how a
kernel written for 32-bit data runs on an 8-bit core (Section 8).

Multi-word values are stored little-endian: word 0 is the least
significant.  Multi-word sequences leave the carry flag holding the
final carry/borrow of the chain, mirroring single-word flag semantics,
so kernels can branch on ``C`` after a multi-word subtract exactly as
after a single-word ``CMP``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.isa.program import Program
from repro.isa.spec import Instruction, MemOperand, Mnemonic


@dataclass(frozen=True)
class Var:
    """A data-memory variable handle.

    Attributes:
        name: Symbolic name.
        base: First data-memory address.
        words: Words per element (kernel width / core width).
        elements: Element count (1 for scalars).
    """

    name: str
    base: int
    words: int
    elements: int = 1

    def word(self, index: int = 0, element: int = 0) -> MemOperand:
        """Operand for word ``index`` of ``element`` (absolute)."""
        return MemOperand(self.base + element * self.words + index)

    def element_address(self, element: int) -> int:
        return self.base + element * self.words


@dataclass
class _Fixup:
    instruction_index: int
    label: str


class KernelBuilder:
    """Builds one benchmark kernel as straight TP-ISA instructions.

    Args:
        name: Program name.
        kernel_width: Bit width of the data the kernel operates on.
        core_width: Datawidth of the core the program targets; must
            divide ``kernel_width``.
        num_bars: BAR configuration to target.
    """

    def __init__(
        self, name: str, kernel_width: int, core_width: int, num_bars: int = 2
    ) -> None:
        if kernel_width % core_width == 0:
            words_per_value = kernel_width // core_width
        elif core_width % kernel_width == 0:
            # A wider core holds a narrow kernel value in one word.
            words_per_value = 1
        else:
            raise ProgramError(
                f"{name}: kernel width {kernel_width} and core width "
                f"{core_width} are incompatible"
            )
        self.name = name
        self.kernel_width = kernel_width
        self.core_width = core_width
        self.num_bars = num_bars
        self.words_per_value = words_per_value
        self.instructions: list[Instruction] = []
        self.data: dict[int, int] = {}
        self.symbols: dict[str, int] = {}
        self._next_address = 0
        self._labels: dict[str, int] = {}
        self._fixups: list[_Fixup] = []
        self._mask = (1 << core_width) - 1
        # Common scratch allocated lazily.
        self._zero: Var | None = None
        self._one: Var | None = None

    # -- data allocation ------------------------------------------------------

    def alloc(self, name: str, elements: int = 1, init=None, scalar: bool = False) -> Var:
        """Allocate a variable.

        Args:
            name: Symbol name.
            elements: Number of elements.
            init: Optional initial value(s); multi-word values are
                split little-endian automatically.
            scalar: If true the variable is one core-width word per
                element (loop counters, pointers) instead of one
                kernel-width value.
        """
        if name in self.symbols:
            raise ProgramError(f"{self.name}: duplicate variable {name!r}")
        words = 1 if scalar else self.words_per_value
        variable = Var(name, self._next_address, words, elements)
        self.symbols[name] = variable.base
        self._next_address += words * elements
        if init is not None:
            values = init if isinstance(init, (list, tuple)) else [init]
            for element, value in enumerate(values):
                self.set_initial(variable, value, element)
        return variable

    @property
    def value_bits(self) -> int:
        """Bits in one stored value: ``words_per_value * core_width``.

        Equals the kernel width on narrow cores and the core width on
        wide ones -- the modulus at which kernel arithmetic wraps.
        """
        return self.words_per_value * self.core_width

    def alloc_counter(self, name: str, value: int) -> Var:
        """Allocate a loop counter wide enough to hold ``value``.

        A 4-bit core cannot hold the number 32 in one word, so deep
        loop counts become little multi-word values; pair with
        :meth:`dec_and_branch_nonzero`.
        """
        bits = max(1, value.bit_length())
        words = -(-bits // self.core_width)
        if name in self.symbols:
            raise ProgramError(f"{self.name}: duplicate variable {name!r}")
        variable = Var(name, self._next_address, words, 1)
        self.symbols[name] = variable.base
        self._next_address += words
        self.set_initial(variable, value)
        return variable

    def dec_and_branch_nonzero(self, counter: Var, label: str) -> None:
        """``counter -= 1; if counter != 0 goto label``.

        Single-word counters use the SUB result's Z flag directly;
        multi-word counters borrow-chain the decrement and OR the words
        into a scratch to derive a whole-value zero test.
        """
        one = self.one
        self.op(Mnemonic.SUB, counter.word(0), one.word(0))
        if counter.words == 1:
            self.branch(Mnemonic.BRN, label, mask=4)
            return
        zero = self.zero
        for index in range(1, counter.words):
            self.op(Mnemonic.SBB, counter.word(index), zero.word(0))
        scratch = self._counter_scratch()
        self.op(Mnemonic.XOR, scratch.word(0), scratch.word(0))
        for index in range(counter.words):
            self.op(Mnemonic.OR, scratch.word(0), counter.word(index))
        self.branch(Mnemonic.BRN, label, mask=4)

    def _counter_scratch(self) -> Var:
        if "_ztest" not in self.symbols:
            self._ztest = self.alloc("_ztest", scalar=True, init=0)
        return self._ztest

    def set_initial(self, variable: Var, value: int, element: int = 0) -> None:
        """Set the initial data-memory image for one element."""
        limit_bits = variable.words * self.core_width
        if not 0 <= value < (1 << limit_bits):
            raise ProgramError(
                f"{self.name}: initial {value} exceeds {limit_bits} bits for "
                f"{variable.name}"
            )
        for index in range(variable.words):
            word = (value >> (index * self.core_width)) & self._mask
            self.data[variable.element_address(element) + index] = word

    @property
    def zero(self) -> Var:
        """A scratch word holding constant 0 (carry-clearing idiom)."""
        if self._zero is None:
            self._zero = self.alloc("_zero", init=0, scalar=True)
        return self._zero

    @property
    def one(self) -> Var:
        """A scratch word holding constant 1 (counter idiom)."""
        if self._one is None:
            self._one = self.alloc("_one", init=1, scalar=True)
        return self._one

    # -- labels & emission ------------------------------------------------------

    def label(self, name: str) -> None:
        """Define ``name`` at the current instruction address."""
        if name in self._labels:
            raise ProgramError(f"{self.name}: duplicate label {name!r}")
        self._labels[name] = len(self.instructions)

    def emit(self, mnemonic: Mnemonic, **fields) -> None:
        """Emit one raw instruction."""
        self.instructions.append(Instruction(mnemonic, **fields))

    def branch(self, mnemonic: Mnemonic, label: str, mask: int) -> None:
        """Emit a branch to ``label`` (forward references fixed later)."""
        self._fixups.append(_Fixup(len(self.instructions), label))
        self.instructions.append(Instruction(mnemonic, target=0, mask=mask))

    def jump(self, label: str) -> None:
        """Unconditional jump (BRN with empty mask)."""
        self.branch(Mnemonic.BRN, label, mask=0)

    def halt(self) -> None:
        """Unconditional branch-to-self."""
        here = len(self.instructions)
        self.instructions.append(Instruction(Mnemonic.BRN, target=here, mask=0))

    def nop(self) -> None:
        """Branch-never (used to pad the decision tree to 256 words)."""
        here = len(self.instructions)
        self.instructions.append(Instruction(Mnemonic.BR, target=here, mask=0))

    # -- single-word conveniences -------------------------------------------------

    def op(self, mnemonic: Mnemonic, dst: MemOperand, src: MemOperand) -> None:
        self.emit(mnemonic, dst=dst, src=src)

    def store(self, dst: MemOperand, imm: int) -> None:
        if imm > self._mask:
            raise ProgramError(
                f"{self.name}: STORE immediate {imm} exceeds core width"
            )
        self.emit(Mnemonic.STORE, dst=dst, imm=imm)

    def setbar(self, bar: int, pointer: Var) -> None:
        self.emit(Mnemonic.SETBAR, bar_index=bar, src=pointer.word(0))

    # -- multi-word macros -------------------------------------------------------

    def mw_add(self, dst: Var, src: Var, dst_el: int = 0, src_el: int = 0) -> None:
        """``dst += src`` over all words; C holds the final carry."""
        for index in range(dst.words):
            mnemonic = Mnemonic.ADD if index == 0 else Mnemonic.ADC
            self.op(mnemonic, dst.word(index, dst_el), src.word(index, src_el))

    def mw_sub(self, dst: Var, src: Var, dst_el: int = 0, src_el: int = 0) -> None:
        """``dst -= src``; C = 1 afterwards iff no borrow (dst >= src)."""
        for index in range(dst.words):
            mnemonic = Mnemonic.SUB if index == 0 else Mnemonic.SBB
            self.op(mnemonic, dst.word(index, dst_el), src.word(index, src_el))

    def mw_copy(self, dst: Var, src: Var, dst_el: int = 0, src_el: int = 0) -> None:
        """``dst = src`` via the XOR/OR idiom (clobbers flags)."""
        for index in range(dst.words):
            self.op(Mnemonic.XOR, dst.word(index, dst_el), dst.word(index, dst_el))
            self.op(Mnemonic.OR, dst.word(index, dst_el), src.word(index, src_el))

    def mw_zero(self, dst: Var, element: int = 0) -> None:
        """``dst = 0`` via XOR with itself."""
        for index in range(dst.words):
            self.op(Mnemonic.XOR, dst.word(index, element), dst.word(index, element))

    def clear_carry(self) -> None:
        """Clear C (logic ops reset it): ``TEST _zero, _zero``."""
        zero = self.zero
        self.op(Mnemonic.TEST, zero.word(0), zero.word(0))

    def mw_shift_left(self, var: Var, element: int = 0) -> None:
        """Logical shift left by one; C = the bit shifted out."""
        self.clear_carry()
        for index in range(var.words):
            self.op(Mnemonic.RLC, var.word(index, element), var.word(index, element))

    def mw_shift_right(self, var: Var, element: int = 0) -> None:
        """Logical shift right by one; C = the bit shifted out."""
        self.clear_carry()
        for index in reversed(range(var.words)):
            self.op(Mnemonic.RRC, var.word(index, element), var.word(index, element))

    def mw_rlc(self, var: Var, element: int = 0) -> None:
        """Rotate-through-carry left without pre-clearing (chaining)."""
        for index in range(var.words):
            self.op(Mnemonic.RLC, var.word(index, element), var.word(index, element))

    # -- finalization ---------------------------------------------------------------

    def finish(self, description: str = "") -> Program:
        """Resolve label fixups and package the program."""
        for fixup in self._fixups:
            if fixup.label not in self._labels:
                raise ProgramError(f"{self.name}: undefined label {fixup.label!r}")
            old = self.instructions[fixup.instruction_index]
            self.instructions[fixup.instruction_index] = Instruction(
                old.mnemonic, target=self._labels[fixup.label], mask=old.mask
            )
        return Program(
            name=self.name,
            instructions=self.instructions,
            datawidth=self.core_width,
            num_bars=self.num_bars,
            data=dict(self.data),
            symbols=dict(self.symbols),
            description=description,
        )


def pack_value(value: int, words: int, width: int) -> list[int]:
    """Split ``value`` into ``words`` little-endian ``width``-bit words."""
    mask = (1 << width) - 1
    return [(value >> (i * width)) & mask for i in range(words)]


def unpack_words(words: list[int], width: int) -> int:
    """Inverse of :func:`pack_value`."""
    value = 0
    for index, word in enumerate(words):
        value |= word << (index * width)
    return value


def read_value(machine, variable: Var, element: int = 0) -> int:
    """Read a (possibly multi-word) value from a machine's memory."""
    words = [
        machine.peek(variable.element_address(element) + index)
        for index in range(variable.words)
    ]
    return unpack_words(words, machine.width)


def write_value(machine, variable: Var, value: int, element: int = 0) -> None:
    """Write a (possibly multi-word) value into a machine's memory."""
    for index, word in enumerate(pack_value(value, variable.words, machine.width)):
        machine.load(variable.element_address(element) + index, word)
