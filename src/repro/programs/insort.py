"""Insertion sort over a 16-element array.

The loop kernel that motivates TP-ISA's pointer-loading SETBAR: the
inner loop walks an element toward its place by pointing BAR 1 at
``arr[j-1]`` -- since adjacent elements sit a fixed ``words_per_value``
apart, one BAR reaches both ``arr[j-1]`` (offsets ``0..w-1``) and
``arr[j]`` (offsets ``w..2w-1``).  A compare is a scratch-copy plus a
multi-word subtract, branching on the final borrow.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.isa.program import Program
from repro.isa.spec import MemOperand, Mnemonic
from repro.programs.builder import KernelBuilder, Var
from repro.programs.common import ARRAY_ELEMENTS, deterministic_values

#: Default array contents per kernel width (deterministic).
def default_inputs(kernel_width: int) -> list[int]:
    """Deterministic default array contents for one kernel width."""
    return deterministic_values(
        seed=0x50 + kernel_width, count=ARRAY_ELEMENTS, bits=kernel_width
    )


def build(
    kernel_width: int,
    core_width: int,
    num_bars: int = 2,
    values: list[int] | None = None,
) -> Program:
    """Build the insertion-sort kernel (sorts ``arr`` ascending)."""
    if num_bars < 2:
        raise ProgramError("insort needs at least one settable BAR")
    values = default_inputs(kernel_width) if values is None else values

    builder = KernelBuilder(
        f"inSort{kernel_width}", kernel_width, core_width, num_bars
    )
    wpv = builder.words_per_value
    arr = builder.alloc("arr", elements=len(values), init=values)
    scratch = builder.alloc("scratch")
    # Pointers/counters are plain core-width scalars.
    ptr = builder.alloc("ptr", scalar=True)          # address of arr[j-1]
    outer_ptr = builder.alloc("outer_ptr", scalar=True)
    i = builder.alloc("i", scalar=True, init=1)
    j = builder.alloc("j", scalar=True)
    step = builder.alloc("step", scalar=True, init=wpv)
    limit = builder.alloc("limit", scalar=True, init=ARRAY_ELEMENTS)
    one = builder.one

    builder.store(outer_ptr.word(0), arr.base)  # arr[i-1] for i = 1

    def bar_word(index: int) -> MemOperand:
        return MemOperand(offset=index, bar=1)

    builder.label("outer")
    builder.mw_copy(j, i)
    builder.mw_copy(ptr, outer_ptr)
    builder.label("inner")
    builder.setbar(1, ptr)
    # scratch = arr[j]; scratch -= arr[j-1]; C==1 -> already ordered.
    for word in range(wpv):
        builder.op(Mnemonic.XOR, scratch.word(word), scratch.word(word))
        builder.op(Mnemonic.OR, scratch.word(word), bar_word(wpv + word))
    for word in range(wpv):
        mnemonic = Mnemonic.SUB if word == 0 else Mnemonic.SBB
        builder.op(mnemonic, scratch.word(word), bar_word(word))
    builder.branch(Mnemonic.BR, "placed", mask=2)  # C==1: arr[j] >= arr[j-1]
    # Swap arr[j-1] and arr[j]: scratch already holds arr[j]-arr[j-1]?
    # No -- reload cleanly: scratch = arr[j]; arr[j] = arr[j-1];
    # arr[j-1] = scratch.
    for word in range(wpv):
        builder.op(Mnemonic.XOR, scratch.word(word), scratch.word(word))
        builder.op(Mnemonic.OR, scratch.word(word), bar_word(wpv + word))
    for word in range(wpv):
        builder.op(Mnemonic.XOR, bar_word(wpv + word), bar_word(wpv + word))
        builder.op(Mnemonic.OR, bar_word(wpv + word), bar_word(word))
    for word in range(wpv):
        builder.op(Mnemonic.XOR, bar_word(word), bar_word(word))
        builder.op(Mnemonic.OR, bar_word(word), scratch.word(word))
    # Step down: j -= 1, ptr -= wpv; continue while j > 0.
    builder.op(Mnemonic.SUB, ptr.word(0), step.word(0))
    builder.op(Mnemonic.SUB, j.word(0), one.word(0))
    builder.branch(Mnemonic.BRN, "inner", mask=4)  # while j != 0
    builder.label("placed")
    builder.op(Mnemonic.ADD, outer_ptr.word(0), step.word(0))
    builder.op(Mnemonic.ADD, i.word(0), one.word(0))
    builder.op(Mnemonic.CMP, i.word(0), limit.word(0))
    builder.branch(Mnemonic.BRN, "outer", mask=2)  # while i < 16 (borrow)
    builder.halt()
    return builder.finish(
        description=f"insertion sort of {len(values)} {kernel_width}-bit "
        f"elements on a {core_width}-bit core"
    )


def reference(values: list[int]) -> list[int]:
    """Golden model: the sorted array."""
    return sorted(values)
