"""Restoring division kernel.

Computes ``dividend / divisor`` (quotient and remainder) by classic
bit-serial restoring division: shift the remainder:dividend pair left
one bit at a time, trial-subtract the divisor, and restore on borrow.
Multi-word shifts chain RLC across the dividend *and* remainder words
in a single carry chain, demonstrating cross-variable coalescing.

Division by zero leaves quotient = all-ones and remainder = dividend's
bits shifted through, matching the hardware-style behaviour of the
restoring algorithm (no trap support in TP-ISA).
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.isa.spec import Mnemonic
from repro.programs.builder import KernelBuilder
from repro.programs.common import deterministic_values

#: Default operand values per kernel width (deterministic, divisor > 0).
DEFAULT_INPUTS = {
    width: (
        deterministic_values(seed=0xD0 + width, count=1, bits=width)[0],
        deterministic_values(seed=0xD7 + width, count=1, bits=max(4, width // 2))[0]
        or 3,
    )
    for width in (8, 16, 32)
}


def build(
    kernel_width: int,
    core_width: int,
    num_bars: int = 2,
    dividend: int | None = None,
    divisor: int | None = None,
) -> Program:
    """Build the divide kernel.

    Results land in ``quotient`` and ``remainder``.
    """
    default_n, default_d = DEFAULT_INPUTS[kernel_width]
    dividend = default_n if dividend is None else dividend
    divisor = default_d if divisor is None else divisor

    builder = KernelBuilder(f"div{kernel_width}", kernel_width, core_width, num_bars)
    n = builder.alloc("dividend", init=dividend)
    d = builder.alloc("divisor", init=divisor)
    quotient = builder.alloc("quotient", init=0)
    remainder = builder.alloc("remainder", init=0)
    # The shift chain spans full stored words, so on a core wider than
    # the kernel the bit-serial loop must cover the whole word.
    count = builder.alloc_counter("count", builder.value_bits)
    one = builder.one

    builder.label("loop")
    # Shift the (remainder : dividend) pair left by one: one carry
    # chain across both variables, MSB of the dividend entering the
    # remainder's LSB.
    builder.clear_carry()
    builder.mw_rlc(n)
    builder.mw_rlc(remainder)
    # Trial subtract; C == 1 afterwards means no borrow (rem >= div).
    builder.mw_sub(remainder, d)
    builder.branch(Mnemonic.BR, "accept", mask=2)  # taken when C == 1
    builder.mw_add(remainder, d)  # restore
    builder.jump("shift_q")
    builder.label("accept")
    # Shift a 1 into the quotient: shift left, then set the LSB.
    builder.mw_shift_left(quotient)
    builder.op(Mnemonic.ADD, quotient.word(0), one.word(0))
    builder.jump("next")
    builder.label("shift_q")
    builder.mw_shift_left(quotient)
    builder.label("next")
    builder.dec_and_branch_nonzero(count, "loop")
    builder.halt()
    return builder.finish(
        description=f"{kernel_width}-bit restoring division on a "
        f"{core_width}-bit core"
    )


def reference(dividend: int, divisor: int, kernel_width: int) -> tuple[int, int]:
    """Golden model: (quotient, remainder); divisor must be nonzero."""
    mask = (1 << kernel_width) - 1
    return (dividend // divisor) & mask, (dividend % divisor) & mask
