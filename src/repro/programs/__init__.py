"""TP-ISA benchmark kernels (Section 8).

The paper evaluates seven kernels -- multiply, divide, insertion sort,
integer average, threshold, CRC8, and a decision tree -- in 8-, 16-,
and 32-bit data versions, each runnable on any core whose datawidth
divides the kernel width (narrower cores use the carry-chained
*data-coalescing* instructions to operate on multi-word values).

:mod:`repro.programs.builder` provides the code generator
infrastructure; each kernel module exposes a ``build(kernel_width,
core_width, ...)`` function returning a ready-to-run
:class:`~repro.isa.program.Program`; :mod:`repro.programs.suite`
registers them all for the evaluation harness.
"""

from repro.programs.suite import (
    BENCHMARKS,
    BenchmarkSpec,
    build_benchmark,
    runnable_configurations,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "build_benchmark",
    "runnable_configurations",
]
