"""Decision-tree kernel (the paper's new benchmark).

A binary classification tree over eight sensor-input words.  Node
thresholds are *hard-coded into instructions* (STORE immediate into a
scratch word right before the CMP), so -- exactly as the paper notes --
they occupy no data memory.  The program is generated to fill all 256
instruction words and performs no data coalescing, which is why the
W-bit version only runs on W-bit cores.

Tree shape and thresholds are deterministic (seeded LCG), so energy
and latency numbers are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError
from repro.isa.program import MAX_INSTRUCTIONS, Program
from repro.isa.spec import Mnemonic
from repro.programs.builder import KernelBuilder
from repro.programs.common import deterministic_values, lcg_stream

#: Sensor inputs the tree reads.
NUM_INPUTS = 8

#: Internal-node count chosen so 3*I + 2*(I+1) + 1 = 253 and three
#: padding NOPs bring the program to exactly 256 words.
INTERNAL_NODES = 50


@dataclass(frozen=True)
class _Node:
    index: int
    feature: int
    threshold: int
    left: "_Node | None" = None
    right: "_Node | None" = None
    leaf_class: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _build_tree(internal_nodes: int) -> _Node:
    """A breadth-first-complete tree with deterministic parameters."""
    rng = lcg_stream(seed=0xDEC1)

    def make(index: int) -> _Node:
        if index < internal_nodes:
            return _Node(
                index=index,
                feature=next(rng) % NUM_INPUTS,
                threshold=next(rng) % 256,
                left=make(2 * index + 1),
                right=make(2 * index + 2),
            )
        return _Node(
            index=index, feature=0, threshold=0, leaf_class=next(rng) % 16
        )

    return make(0)


def default_inputs(kernel_width: int) -> list[int]:
    """Deterministic default sensor inputs (8-bit range at any width)."""
    # Inputs stay in [0, 255] so 8-bit thresholds partition them at
    # every width (thresholds are STORE immediates: 8 bits max).
    return deterministic_values(seed=0xD1 + kernel_width, count=NUM_INPUTS, bits=8)


def build(
    kernel_width: int,
    core_width: int,
    num_bars: int = 2,
    inputs: list[int] | None = None,
) -> Program:
    """Build the decision-tree kernel; the class lands in ``result``.

    Raises:
        ProgramError: If ``core_width != kernel_width`` -- the tree
            performs no coalescing by design (Section 8).
    """
    if core_width != kernel_width:
        raise ProgramError(
            "dTree performs no data coalescing: core width must equal "
            f"kernel width (got {core_width} vs {kernel_width})"
        )
    inputs = default_inputs(kernel_width) if inputs is None else inputs
    if len(inputs) != NUM_INPUTS:
        raise ProgramError(f"dTree needs exactly {NUM_INPUTS} inputs")

    builder = KernelBuilder(
        f"dTree{kernel_width}", kernel_width, core_width, num_bars
    )
    sensors = builder.alloc("inputs", elements=NUM_INPUTS, init=inputs)
    result = builder.alloc("result", init=0)
    scratch = builder.alloc("scratch", scalar=True)

    tree = _build_tree(INTERNAL_NODES)

    def emit(node: _Node) -> None:
        if node.is_leaf:
            builder.store(result.word(0), node.leaf_class)
            builder.jump("end")
            return
        builder.store(scratch.word(0), node.threshold)
        builder.op(Mnemonic.CMP, sensors.word(0, element=node.feature), scratch.word(0))
        builder.branch(Mnemonic.BR, f"right_{node.index}", mask=2)  # input >= t
        emit(node.left)
        builder.label(f"right_{node.index}")
        emit(node.right)

    emit(tree)
    builder.label("end")
    while len(builder.instructions) < MAX_INSTRUCTIONS - 1:
        builder.nop()
    builder.halt()
    program = builder.finish(
        description=f"{INTERNAL_NODES}-node decision tree over "
        f"{NUM_INPUTS} sensor inputs ({kernel_width}-bit, 256 words)"
    )
    if program.static_size != MAX_INSTRUCTIONS:
        raise ProgramError(
            f"dTree generated {program.static_size} words, expected 256"
        )
    return program


def reference(inputs: list[int]) -> int:
    """Golden model: walk the same deterministic tree in Python."""
    node = _build_tree(INTERNAL_NODES)
    while not node.is_leaf:
        node = node.right if inputs[node.feature] >= node.threshold else node.left
    return node.leaf_class
