"""Shared helpers for benchmark kernels: deterministic input data."""

from __future__ import annotations

from typing import Iterator

#: Number of array elements the paper's array kernels process.
ARRAY_ELEMENTS = 16

#: Bytes in the CRC8 input stream.
CRC_STREAM_BYTES = 16


def deterministic_values(seed: int, count: int, bits: int) -> list[int]:
    """``count`` reproducible pseudo-random ``bits``-wide values.

    A fixed linear congruential generator keeps benchmark inputs
    identical across runs and platforms (the repository has no use for
    true randomness -- the paper's energy numbers are per-iteration
    averages over fixed inputs).
    """
    mask = (1 << bits) - 1
    state = seed & 0x7FFFFFFF or 1
    values = []
    for _ in range(count):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        values.append((state >> 8) & mask)
    return values


def lcg_stream(seed: int) -> Iterator[int]:
    """Endless deterministic 31-bit LCG stream."""
    state = seed & 0x7FFFFFFF or 1
    while True:
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        yield state
