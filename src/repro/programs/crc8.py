"""CRC-8 kernel over a 16-byte stream (polynomial 0x07, CRC-8/ATM).

The bitwise update exploits the rotate instruction's carry output:
``RL`` leaves the old MSB in C and the rotated value has the old MSB in
its LSB, so ``(crc << 1) ^ 0x07`` equals ``rotate ^ 0x06`` when the MSB
was set (the rotated-in LSB already supplies the polynomial's low bit)
and plain ``rotate`` when it was clear.

The kernel exists only at 8-bit data width (as in the paper's Table 8,
which reports CRC8 in the 8-bit column alone), but runs on any core of
width >= 8 ... in practice the 8-bit core, since the byte stream is
byte-addressed.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.isa.program import Program
from repro.isa.spec import MemOperand, Mnemonic
from repro.programs.builder import KernelBuilder
from repro.programs.common import CRC_STREAM_BYTES, deterministic_values

#: The CRC-8 generator polynomial (x^8 + x^2 + x + 1).
POLYNOMIAL = 0x07


def default_inputs() -> list[int]:
    """Deterministic default 16-byte stream."""
    return deterministic_values(seed=0xC8, count=CRC_STREAM_BYTES, bits=8)


def build(
    kernel_width: int = 8,
    core_width: int = 8,
    num_bars: int = 2,
    stream: list[int] | None = None,
) -> Program:
    """Build the CRC-8 kernel; the checksum lands in ``crc``."""
    if kernel_width != 8 or core_width != 8:
        raise ProgramError("crc8 is defined for 8-bit data on 8-bit cores")
    if num_bars < 2:
        raise ProgramError("crc8 needs at least one settable BAR")
    stream = default_inputs() if stream is None else stream

    builder = KernelBuilder("crc8", kernel_width, core_width, num_bars)
    data = builder.alloc("stream", elements=len(stream), init=stream)
    crc = builder.alloc("crc", init=0)
    ptr = builder.alloc("ptr", scalar=True, init=data.base)
    bytes_left = builder.alloc("bytes_left", scalar=True, init=len(stream))
    bits = builder.alloc("bits", scalar=True)
    poly_low = builder.alloc("poly_low", scalar=True, init=POLYNOMIAL & 0xFE)
    one = builder.one

    builder.label("byte_loop")
    builder.setbar(1, ptr)
    builder.op(Mnemonic.XOR, crc.word(0), MemOperand(0, bar=1))
    builder.store(bits.word(0), 8)
    builder.label("bit_loop")
    builder.op(Mnemonic.RL, crc.word(0), crc.word(0))  # C = old MSB
    builder.branch(Mnemonic.BRN, "no_poly", mask=2)  # skip when C == 0
    builder.op(Mnemonic.XOR, crc.word(0), poly_low.word(0))
    builder.label("no_poly")
    builder.op(Mnemonic.SUB, bits.word(0), one.word(0))
    builder.branch(Mnemonic.BRN, "bit_loop", mask=4)
    builder.op(Mnemonic.ADD, ptr.word(0), one.word(0))
    builder.op(Mnemonic.SUB, bytes_left.word(0), one.word(0))
    builder.branch(Mnemonic.BRN, "byte_loop", mask=4)
    builder.halt()
    return builder.finish(
        description=f"CRC-8/ATM over {len(stream)} bytes"
    )


def reference(stream: list[int]) -> int:
    """Golden model: bitwise CRC-8 with polynomial 0x07."""
    crc = 0
    for byte in stream:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ POLYNOMIAL) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc
