"""Integer average over a 16-element array.

Straight-line kernel: the 16 element addresses are known statically, so
the sum is fully unrolled (no BARs, no loop branches -- in the paper's
Table 7 this kernel consumes *zero* flags in its native-width form).
Division by 16 uses four pure rotates followed by a mask for the
native-width version (no carry involved), or carry-chained multi-word
shifts when coalescing.

The result is a truncated average: the sum wraps at the kernel width,
matching the paper's fixed-width benchmark semantics.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.isa.spec import Mnemonic
from repro.programs.builder import KernelBuilder
from repro.programs.common import ARRAY_ELEMENTS, deterministic_values


def default_inputs(kernel_width: int) -> list[int]:
    """Deterministic defaults sized so the 16-element sum never wraps."""
    # Keep inputs small enough that the 16-element sum does not wrap:
    # the paper's kernels report a meaningful average.
    return deterministic_values(
        seed=0xAA + kernel_width, count=ARRAY_ELEMENTS, bits=kernel_width - 4
    )


def build(
    kernel_width: int,
    core_width: int,
    num_bars: int = 2,
    values: list[int] | None = None,
) -> Program:
    """Build the average kernel; the result lands in ``avg``."""
    values = default_inputs(kernel_width) if values is None else values

    builder = KernelBuilder(
        f"intAvg{kernel_width}", kernel_width, core_width, num_bars
    )
    arr = builder.alloc("arr", elements=len(values), init=values)
    avg = builder.alloc("avg", init=0)
    wpv = builder.words_per_value

    for element in range(len(values)):
        builder.mw_add(avg, arr, src_el=element)

    shift_count = (len(values) - 1).bit_length()  # log2(16) = 4
    if wpv == 1 and core_width > shift_count:
        # Native width: rotate right four times, then mask off the
        # wrapped high bits -- an exact logical shift with no flag use.
        mask_value = (1 << (core_width - shift_count)) - 1
        mask = builder.alloc("shift_mask", init=mask_value, scalar=True)
        for _ in range(shift_count):
            builder.op(Mnemonic.RR, avg.word(0), avg.word(0))
        builder.op(Mnemonic.AND, avg.word(0), mask.word(0))
    else:
        for _ in range(shift_count):
            builder.mw_shift_right(avg)
    builder.halt()
    return builder.finish(
        description=f"truncated mean of {len(values)} {kernel_width}-bit "
        f"elements on a {core_width}-bit core (unrolled)"
    )


def reference(values: list[int], kernel_width: int) -> int:
    """Golden model: truncated (wrapping) average."""
    mask = (1 << kernel_width) - 1
    return (sum(values) & mask) // len(values) if values else 0


def reference_truncated(values: list[int], kernel_width: int) -> int:
    """Golden model matching the kernel exactly: wrap, then shift."""
    mask = (1 << kernel_width) - 1
    return ((sum(values) & mask) >> (len(values) - 1).bit_length()) & mask
