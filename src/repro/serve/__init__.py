"""Long-running DSE service: job queue + live-observability HTTP API.

``python -m repro serve`` turns the repo's one-shot CLI drivers
(sweep, yield, fault campaign, fuzz verify, profile, place) into a
zero-dependency service built on the stdlib ``ThreadingHTTPServer``:

* :mod:`repro.serve.drivers` — the job-kind registry mapping a
  ``(kind, params)`` request onto an existing pipeline entry point,
  with canonicalized parameters so identical requests share one
  content-addressed dedup key;
* :mod:`repro.serve.jobs` — the thread-safe job queue: worker
  threads, per-job trace ids stitched across :mod:`repro.exec` pool
  workers, per-job run reports, and one ``serve`` ledger record per
  completed job so the regression sentinel gates service latency;
* :mod:`repro.serve.sse` — Server-Sent-Events framing over the
  :mod:`repro.obs.live` bus (bounded per-client queues, drop
  counting, heartbeat keepalives);
* :mod:`repro.serve.server` — the HTTP surface (``/metrics``,
  ``/healthz``, ``/readyz``, ``/jobs``, ``/events``, ``/``);
* :mod:`repro.serve.page` — the live status page reusing the
  telemetry dashboard's CSS/sparklines;
* :mod:`repro.serve.cli` — argument parsing, ``REPRO_SERVE_*`` env
  knobs, and graceful SIGTERM/SIGINT drain.

See ``docs/SERVE.md`` for the endpoint and event-schema reference.
"""

from repro.serve.drivers import canonical_params, job_kinds, run_job
from repro.serve.jobs import Job, JobManager, job_key
from repro.serve.cli import serve_main

__all__ = [
    "Job",
    "JobManager",
    "canonical_params",
    "job_key",
    "job_kinds",
    "run_job",
    "serve_main",
]
