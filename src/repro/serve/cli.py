"""``python -m repro serve``: flags, env knobs, and graceful shutdown.

::

    python -m repro serve --port 8097 --jobs 2
    python -m repro serve --port 0          # ephemeral port (CI)

Every flag has a ``REPRO_SERVE_*`` environment fallback (flag wins):

=====================  =============================  ===============
flag                   environment variable           default
=====================  =============================  ===============
``--host``             ``REPRO_SERVE_HOST``           ``127.0.0.1``
``--port``             ``REPRO_SERVE_PORT``           ``8097``
``--jobs``             ``REPRO_SERVE_JOBS``           1
``--workers``          ``REPRO_SERVE_WORKERS``        1
``--max-jobs``         ``REPRO_SERVE_MAX_JOBS``       256
``--heartbeat``        ``REPRO_SERVE_HEARTBEAT``      15.0
``--tick``             ``REPRO_SERVE_TICK``           2.0
``--drain-timeout``    ``REPRO_SERVE_DRAIN_TIMEOUT``  10.0
=====================  =============================  ===============

``--jobs N`` is the **per-job process fan-out** (it becomes the
session default for :func:`repro.exec.parallel_map`, so a sweep job
spreads over N worker processes); ``--workers K`` is how many jobs
execute *concurrently* on service worker threads.

On SIGTERM/SIGINT the service stops accepting jobs (``/readyz`` flips
to 503), drains in-flight jobs for up to ``--drain-timeout`` seconds
(their ledger records flush as each completes), publishes a final
``shutdown`` SSE event, closes every stream, and exits 0.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time


def _usage() -> str:
    return (
        "usage: python -m repro serve [--host H] [--port P] [--jobs N]\n"
        "           [--workers K] [--max-jobs M] [--heartbeat S]\n"
        "           [--tick S] [--drain-timeout S] [--verbose]"
    )


def _env(name: str, cast, fallback):
    raw = os.environ.get(name, "")
    if raw:
        try:
            return cast(raw)
        except ValueError:
            print(f"ignoring bad {name}={raw!r}", file=sys.stderr)
    return fallback


def serve_main(argv: list[str]) -> int:
    """Entry point for the ``serve`` subcommand."""
    host = _env("REPRO_SERVE_HOST", str, "127.0.0.1")
    port = _env("REPRO_SERVE_PORT", int, 8097)
    jobs = _env("REPRO_SERVE_JOBS", int, 1)
    workers = _env("REPRO_SERVE_WORKERS", int, 1)
    max_jobs = _env("REPRO_SERVE_MAX_JOBS", int, 256)
    heartbeat = _env("REPRO_SERVE_HEARTBEAT", float, 15.0)
    tick = _env("REPRO_SERVE_TICK", float, 2.0)
    drain_timeout = _env("REPRO_SERVE_DRAIN_TIMEOUT", float, 10.0)
    verbose = False

    i = 0
    while i < len(argv):
        arg = argv[i]

        def value(cast=str):
            if i + 1 >= len(argv):
                raise ValueError(f"{arg} needs an argument")
            return cast(argv[i + 1])

        try:
            if arg == "--host":
                host = value()
                i += 1
            elif arg == "--port":
                port = value(int)
                i += 1
            elif arg == "--jobs":
                jobs = value(int)
                i += 1
            elif arg == "--workers":
                workers = value(int)
                i += 1
            elif arg == "--max-jobs":
                max_jobs = value(int)
                i += 1
            elif arg == "--heartbeat":
                heartbeat = value(float)
                i += 1
            elif arg == "--tick":
                tick = value(float)
                i += 1
            elif arg == "--drain-timeout":
                drain_timeout = value(float)
                i += 1
            elif arg == "--verbose":
                verbose = True
            elif arg in ("-h", "--help"):
                print(_usage())
                return 0
            else:
                print(f"unknown option {arg}", file=sys.stderr)
                print(_usage(), file=sys.stderr)
                return 2
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        i += 1

    from repro import exec as _exec
    from repro import obs
    from repro.obs import live
    from repro.serve.jobs import JobManager
    from repro.serve.server import ReproServer

    obs.enable()
    if jobs and jobs > 1:
        _exec.set_default_jobs(jobs)

    bus = live.activate()
    ticker = live.SnapshotTicker(bus, interval=tick)
    manager = JobManager(workers=workers, max_jobs=max_jobs)
    bus.add_tap(manager.tap)
    manager.start()
    ticker.start()

    server = ReproServer(
        (host, port), manager, bus, heartbeat=heartbeat, quiet=not verbose
    )
    bound_port = server.server_address[1]
    # Parsed by CI / subprocess tests: keep this line's shape stable.
    print(f"serving on http://{host}:{bound_port}", flush=True)

    stop = threading.Event()

    def _on_signal(signum, frame):
        print(
            f"received {signal.Signals(signum).name}, draining...",
            file=sys.stderr,
            flush=True,
        )
        stop.set()

    old_term = signal.signal(signal.SIGTERM, _on_signal)
    old_int = signal.signal(signal.SIGINT, _on_signal)

    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    try:
        stop.wait()
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)

    drained = manager.drain(timeout=drain_timeout)
    if not drained:
        print(
            f"drain timed out after {drain_timeout:.1f}s; "
            "abandoning in-flight jobs",
            file=sys.stderr,
            flush=True,
        )
    ticker.stop()
    bus.publish(
        "shutdown",
        {"drained": drained, "uptime_s": round(time.time() - server.started_ts, 1)},
    )
    bus.close_all()
    server.shutdown()
    server.server_close()
    thread.join(timeout=2.0)
    manager.stop()
    live.deactivate()
    print("shutdown complete", flush=True)
    return 0
