"""The HTTP surface of ``python -m repro serve`` (stdlib only).

Endpoints (see ``docs/SERVE.md`` for the full reference):

====================  =====================================================
``GET /``             live status page (SSE-auto-refreshing HTML)
``GET /healthz``      liveness — 200 as long as the process serves
``GET /readyz``       readiness — 200 accepting jobs, 503 while draining
``GET /metrics``      whole metrics registry, Prometheus text format
``GET /jobs``         job table summary (JSON)
``POST /jobs``        submit ``{"kind": ..., "params": {...}}`` → 202
``GET /jobs/<id>``    one job incl. result, queue position, progress/ETA
``GET /jobs/<id>/trace``   stitched Chrome-trace JSON array (finished jobs)
``GET /jobs/<id>/report``  per-job RUN_REPORT (finished jobs)
``GET /events``       SSE stream (``?kinds=a,b`` filter, ``?replay=1``)
====================  =====================================================

Built on :class:`http.server.ThreadingHTTPServer` with daemon threads:
each request (including long-lived SSE streams) runs on its own
thread, so a slow consumer never blocks the accept loop.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError
from repro.obs import live
from repro.obs.metrics import counter as _obs_counter
from repro.obs.promtext import render_prometheus
from repro.serve import sse
from repro.serve.jobs import JobManager
from repro.serve.page import render_page

_REQUESTS = _obs_counter("serve.requests")

#: Cap on accepted POST bodies (a params dict is tiny).
MAX_BODY_BYTES = 64 * 1024


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service's shared state."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        manager: JobManager,
        bus: "live.LiveBus",
        heartbeat: float = sse.DEFAULT_HEARTBEAT,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, RequestHandler)
        self.manager = manager
        self.bus = bus
        self.heartbeat = heartbeat
        self.quiet = quiet
        self.started_ts = time.time()


class RequestHandler(BaseHTTPRequestHandler):
    """One request; ``self.server`` is the :class:`ReproServer`."""

    server: ReproServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, obj, status: int = 200) -> None:
        body = (json.dumps(obj, indent=2) + "\n").encode()
        self._send(status, body, "application/json")

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    # -- GET ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        _REQUESTS.inc()
        url = urlparse(self.path)
        route = url.path.rstrip("/") or "/"
        try:
            if route == "/":
                body = render_page(
                    self.server.manager, self.server.started_ts
                ).encode()
                self._send(200, body, "text/html; charset=utf-8")
            elif route == "/healthz":
                self._send_json(
                    {
                        "status": "ok",
                        "uptime_s": round(
                            time.time() - self.server.started_ts, 1
                        ),
                    }
                )
            elif route == "/readyz":
                if self.server.manager.draining:
                    self._send_json({"status": "draining"}, status=503)
                else:
                    self._send_json({"status": "ready"})
            elif route == "/metrics":
                self._send(
                    200,
                    render_prometheus().encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/jobs":
                self._send_json(
                    {
                        "stats": self.server.manager.stats(),
                        "jobs": [
                            job.to_dict()
                            for job in self.server.manager.jobs()
                        ],
                    }
                )
            elif route.startswith("/jobs/"):
                self._job_route(route)
            elif route == "/events":
                self._events(parse_qs(url.query))
            else:
                self._error(404, f"no such endpoint: {route}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def _job_route(self, route: str) -> None:
        parts = route.split("/")[2:]  # ["job-0001"] or ["job-0001", "trace"]
        job = self.server.manager.job(parts[0])
        if job is None:
            self._error(404, f"no such job: {parts[0]}")
            return
        sub = parts[1] if len(parts) > 1 else None
        if sub is None:
            payload = job.to_dict(include_result=True)
            payload["queue_position"] = self.server.manager.queue_position(job)
            self._send_json(payload)
        elif sub == "trace":
            if not job.finished:
                self._error(409, f"job {job.id} is {job.status}; no trace yet")
                return
            events = [event.to_chrome() for event in job.spans]
            self._send_json(events)
        elif sub == "report":
            if not job.finished or job.report is None:
                self._error(
                    409, f"job {job.id} is {job.status}; no report yet"
                )
                return
            self._send_json(job.report)
        else:
            self._error(404, f"no such job endpoint: {sub}")

    def _events(self, query: dict) -> None:
        kinds = None
        if query.get("kinds"):
            kinds = [
                k for k in query["kinds"][0].split(",") if k
            ] or None
        replay = query.get("replay", ["0"])[0] not in ("", "0")
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        # SSE is unbounded: no Content-Length, so close delimits it.
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for chunk in sse.event_stream(
                self.server.bus,
                heartbeat=self.server.heartbeat,
                kinds=kinds,
                replay=replay,
            ):
                self.wfile.write(chunk)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client disconnected; the generator unsubscribes
        self.close_connection = True

    # -- POST --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        _REQUESTS.inc()
        route = urlparse(self.path).path.rstrip("/")
        if route != "/jobs":
            self._error(404, f"no such endpoint: {route}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except ValueError:
            self._error(400, "request body is not valid JSON")
            return
        if not isinstance(payload, dict) or "kind" not in payload:
            self._error(400, 'expected {"kind": ..., "params": {...}}')
            return
        try:
            job, deduped = self.server.manager.submit(
                payload["kind"], payload.get("params")
            )
        except ReproError as exc:
            self._error(400, str(exc))
            return
        except RuntimeError as exc:  # draining
            self._error(503, str(exc))
            return
        response = job.to_dict()
        response["deduped"] = deduped
        response["queue_position"] = self.server.manager.queue_position(job)
        self._send_json(response, status=202)
