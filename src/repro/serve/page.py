"""The live status page (``GET /``).

One self-contained HTML page sharing the telemetry dashboard's CSS and
sparkline machinery (:mod:`repro.obs.dashboard`), rendered server-side
from the job table and metric registry, with a small inline script
that subscribes to ``/events`` and reloads on job lifecycle changes --
the page is always at most one SSE event stale.
"""

from __future__ import annotations

import html
import time

from repro.obs.dashboard import DASHBOARD_CSS, spark_svg
from repro.obs.metrics import REGISTRY
from repro.serve.jobs import JobManager

_SCRIPT = """\
const es = new EventSource('/events');
let pending = null;
es.addEventListener('job', () => {
  if (pending === null) pending = setTimeout(() => location.reload(), 500);
});
es.addEventListener('shutdown', () => {
  es.close();
  document.getElementById('state').textContent = 'shut down';
});
"""


def _fmt_s(value) -> str:
    return "-" if value is None else f"{value:.2f}s"


def _job_row(manager: JobManager, job) -> str:
    progress = ""
    if job.progress and job.progress.get("percent") is not None:
        progress = f"{job.progress['percent']}%"
        if job.progress.get("eta_s") is not None:
            progress += f" (eta {job.progress['eta_s']:.0f}s)"
    elif job.status == "queued":
        position = manager.queue_position(job)
        progress = f"queue #{position + 1}" if position is not None else ""
    links = ""
    if job.finished:
        links = (
            f'<a href="/jobs/{job.id}/trace">trace</a> '
            f'<a href="/jobs/{job.id}/report">report</a>'
        )
    error = html.escape(job.error or "")
    return (
        "<tr>"
        f'<td><a href="/jobs/{job.id}">{job.id}</a></td>'
        f"<td>{html.escape(job.kind)}</td>"
        f'<td class="st-{job.status}">{job.status}</td>'
        f"<td>{html.escape(progress)}</td>"
        f"<td>{_fmt_s(job.queue_wait_s)}</td>"
        f"<td>{_fmt_s(job.wall_s)}</td>"
        f"<td>{job.dedup_hits}</td>"
        f"<td>{links}{error}</td>"
        "</tr>"
    )


def _tile(label: str, value) -> str:
    return (
        '<div class="tile">'
        f'<div class="label">{html.escape(label)}</div>'
        f'<div class="value">{html.escape(str(value))}</div>'
        "</div>"
    )


def render_page(manager: JobManager, started_ts: float) -> str:
    """The whole status page as one HTML document."""
    stats = manager.stats()
    jobs = manager.jobs()
    snapshot = REGISTRY.snapshot()
    walls = [j.wall_s for j in jobs if j.wall_s is not None][-30:]
    spark = (
        spark_svg(walls, f"last {len(walls)} job wall times")
        if walls
        else ""
    )
    uptime = time.time() - started_ts
    rows = "".join(_job_row(manager, job) for job in reversed(jobs))
    tiles = "".join(
        [
            _tile("uptime", f"{uptime:.0f}s"),
            _tile("jobs", stats["jobs"]),
            _tile("queued", stats["by_status"].get("queued", 0)),
            _tile("running", stats["by_status"].get("running", 0)),
            _tile("done", stats["by_status"].get("done", 0)),
            _tile("failed", stats["by_status"].get("failed", 0)),
            _tile("dedup hits", snapshot.get("serve.dedup_hits", 0)),
            _tile("sse clients", snapshot.get("serve.sse.clients", 0)),
        ]
    )
    state = "draining" if stats["draining"] else "serving"
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro serve</title>
<style>{DASHBOARD_CSS}
.st-done {{ color: var(--trend); }}
.st-failed {{ color: #c0392b; }}
td a {{ margin-right: 6px; }}
</style>
</head>
<body>
<h1>repro serve <span id="state">({state})</span></h1>
<p>live DSE service &mdash; <a href="/metrics">/metrics</a>
 &middot; <a href="/jobs">/jobs</a>
 &middot; <a href="/events">/events</a>
 &middot; <a href="/healthz">/healthz</a></p>
<div class="tiles">{tiles}</div>
<h2>Job wall times</h2>
{spark}
<h2>Jobs</h2>
<table>
<tr><th>id</th><th>kind</th><th>status</th><th>progress</th>
<th>queue wait</th><th>wall</th><th>dedup</th><th>links</th></tr>
{rows}
</table>
<script>{_SCRIPT}</script>
</body>
</html>
"""
