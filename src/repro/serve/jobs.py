"""Thread-safe job queue with dedup, trace stitching, and ledger feed.

One :class:`JobManager` owns the service's jobs:

* **Submission** (:meth:`JobManager.submit`) canonicalizes the
  parameters (:func:`repro.serve.drivers.canonical_params`), derives a
  content-addressed **dedup key** (:func:`job_key`), and — when an
  identical job is already queued, running, or completed — coalesces
  the request onto the existing job instead of executing twice
  (``serve.dedup_hits``).  A *failed* job never dedups: resubmission
  retries.
* **Execution**: ``workers`` daemon threads drain a FIFO queue.  Each
  job gets a **trace id** minted at submission; the worker thread
  stamps it (:func:`repro.obs.trace.set_trace_id`) so every span the
  driver records — including spans shipped back from
  :func:`repro.exec.parallel_map` pool workers, which forward the
  submitting thread's id — carries the job's id.
* **Completion**: the job's spans are *drained* out of the process-wide
  tracer (bounding its growth in a long-running server) into the job,
  a per-job run report is built over exactly those spans, and one
  compact ``serve`` ledger record is appended (series
  ``serve.<kind>.wall_s``, ``serve.queue_wait_s``,
  ``serve.jobs.completed``) so the cross-run sentinel gates service
  latency like any other pipeline cost.
* **Progress**: install :meth:`JobManager.tap` as a live-bus tap and
  in-flight ``progress`` events fold into the owning job's
  ``progress`` block (percent, rate, ETA) by trace id.

Everything is stdlib; locking is one mutex around the job table plus
the queue's own synchronization.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
import uuid

from repro.obs import build_run_report
from repro.obs import history as _history
from repro.obs import live as _live
from repro.obs.metrics import (
    counter as _obs_counter,
    gauge as _obs_gauge,
    histogram as _obs_histogram,
)
from repro.obs.trace import TRACER, Tracer, set_trace_id
from repro.serve import drivers

_SUBMITTED = _obs_counter("serve.jobs.submitted")
_COMPLETED = _obs_counter("serve.jobs.completed")
_FAILED = _obs_counter("serve.jobs.failed")
_DEDUP_HITS = _obs_counter("serve.dedup_hits")
_QUEUE_DEPTH = _obs_gauge("serve.queue_depth")
_QUEUE_WAIT = _obs_histogram("serve.queue_wait_s")
_JOB_WALL = _obs_histogram("serve.job.wall_s")

#: Finished jobs kept in the table before the oldest are evicted.
DEFAULT_MAX_JOBS = 256


def job_key(kind: str, params: dict) -> str:
    """Content address of one canonical (kind, params) request."""
    payload = json.dumps(
        {"kind": kind, "params": params},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class Job:
    """One submitted request and everything it produced."""

    def __init__(self, job_id: str, kind: str, params: dict, key: str) -> None:
        self.id = job_id
        self.kind = kind
        self.params = params
        self.key = key
        self.trace_id = uuid.uuid4().hex[:16]
        self.status = "queued"  # queued | running | done | failed
        self.created_ts = time.time()
        self.created_perf = time.perf_counter()
        self.started_ts: float | None = None
        self.finished_ts: float | None = None
        self.queue_wait_s: float | None = None
        self.wall_s: float | None = None
        self.result: dict | None = None
        self.error: str | None = None
        self.progress: dict | None = None
        self.dedup_hits = 0
        self.spans: list = []
        self.report: dict | None = None

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed")

    def to_dict(self, include_result: bool = False) -> dict:
        out = {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "key": self.key,
            "trace_id": self.trace_id,
            "status": self.status,
            "created_ts": round(self.created_ts, 3),
            "started_ts": None
            if self.started_ts is None
            else round(self.started_ts, 3),
            "finished_ts": None
            if self.finished_ts is None
            else round(self.finished_ts, 3),
            "queue_wait_s": None
            if self.queue_wait_s is None
            else round(self.queue_wait_s, 4),
            "wall_s": None if self.wall_s is None else round(self.wall_s, 4),
            "dedup_hits": self.dedup_hits,
            "progress": self.progress,
            "error": self.error,
            "span_count": len(self.spans),
        }
        if include_result:
            out["result"] = self.result
        return out

    def event_data(self) -> dict:
        """Compact payload for ``job`` lifecycle bus events."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "trace_id": self.trace_id,
            "queue_wait_s": None
            if self.queue_wait_s is None
            else round(self.queue_wait_s, 4),
            "wall_s": None if self.wall_s is None else round(self.wall_s, 4),
            "error": self.error,
        }


class JobManager:
    """FIFO job queue over ``workers`` daemon threads."""

    def __init__(
        self, workers: int = 1, max_jobs: int = DEFAULT_MAX_JOBS
    ) -> None:
        self.workers = max(1, int(workers))
        self.max_jobs = max(1, int(max_jobs))
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # insertion-ordered
        self._by_key: dict[str, Job] = {}
        self._queue: "queue.Queue[Job]" = queue.Queue()
        self._stop = threading.Event()
        self._draining = False
        self._seq = 0
        self._threads: list[threading.Thread] = []
        self._idle = threading.Condition(self._lock)
        self._running = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 10.0) -> bool:
        """Refuse new work, wait for in-flight jobs; True when empty.

        Jobs still queued or running after ``timeout`` seconds are
        abandoned (their daemon threads die with the process) — the
        caller reports the drain as incomplete, but shutdown proceeds.
        """
        self._draining = True
        deadline = time.perf_counter() + max(0.0, timeout)
        with self._idle:
            while any(not job.finished for job in self._jobs.values()):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return False
                self._idle.wait(min(0.2, remaining))
        return True

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads = []

    # -- submission --------------------------------------------------------

    def submit(self, kind: str, params: dict | None = None) -> tuple[Job, bool]:
        """Queue one job; returns ``(job, deduped)``.

        Raises :class:`repro.errors.ConfigError` for unknown kinds or
        parameters, and ``RuntimeError`` while the manager drains.
        """
        canonical = drivers.canonical_params(kind, params)
        key = job_key(kind, canonical)
        with self._lock:
            if self._draining:
                raise RuntimeError("service is draining; not accepting jobs")
            existing = self._by_key.get(key)
            if existing is not None and existing.status != "failed":
                existing.dedup_hits += 1
            else:
                existing = None
                self._seq += 1
                job = Job(f"job-{self._seq:04d}", kind, canonical, key)
                self._jobs[job.id] = job
                self._by_key[key] = job
                self._evict_locked()
        if existing is not None:
            _DEDUP_HITS.inc()
            _live.publish("job", {**existing.event_data(), "deduped": True})
            return existing, True
        _SUBMITTED.inc()
        self._queue.put(job)
        _QUEUE_DEPTH.set(self._queue.qsize())
        _live.publish("job", job.event_data())
        return job, False

    def _evict_locked(self) -> None:
        """Drop the oldest *finished* jobs beyond ``max_jobs``."""
        excess = len(self._jobs) - self.max_jobs
        if excess <= 0:
            return
        for job_id in list(self._jobs):
            if excess <= 0:
                break
            job = self._jobs[job_id]
            if not job.finished:
                continue
            del self._jobs[job_id]
            if self._by_key.get(job.key) is job:
                del self._by_key[job.key]
            excess -= 1

    # -- lookup ------------------------------------------------------------

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def queue_position(self, job: Job) -> int | None:
        """0-based position among queued jobs, or None once started."""
        if job.status != "queued":
            return None
        with self._lock:
            ahead = 0
            for other in self._jobs.values():
                if other is job:
                    break
                if other.status == "queued":
                    ahead += 1
            return ahead

    def stats(self) -> dict:
        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "jobs": len(self._jobs),
                "by_status": by_status,
                "queue_depth": self._queue.qsize(),
                "running": self._running,
                "workers": self.workers,
                "draining": self._draining,
            }

    # -- live-bus tap ------------------------------------------------------

    def tap(self, event: dict) -> None:
        """Fold in-flight ``progress`` events into the owning job."""
        if event.get("kind") != "progress":
            return
        data = event.get("data", {})
        trace_id = data.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            for job in self._jobs.values():
                if job.trace_id == trace_id and job.status == "running":
                    job.progress = {
                        "label": data.get("label"),
                        "done": data.get("done"),
                        "total": data.get("total"),
                        "percent": data.get("percent"),
                        "rate": data.get("rate"),
                        "eta_s": data.get("eta_s"),
                    }
                    break

    # -- execution ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            with self._lock:
                self._running += 1
            try:
                self._run_job(job)
            finally:
                with self._idle:
                    self._running -= 1
                    self._idle.notify_all()
                _QUEUE_DEPTH.set(self._queue.qsize())

    def _run_job(self, job: Job) -> None:
        job.started_ts = time.time()
        job.queue_wait_s = time.perf_counter() - job.created_perf
        job.status = "running"
        _QUEUE_DEPTH.set(self._queue.qsize())
        _QUEUE_WAIT.observe(job.queue_wait_s)
        _live.publish("job", job.event_data())
        set_trace_id(job.trace_id)
        started = time.perf_counter()
        try:
            job.result = drivers.run_job(job.kind, job.params)
            outcome = "done"
        except Exception as exc:  # driver errors become job state
            job.error = f"{type(exc).__name__}: {exc}"
            outcome = "failed"
        finally:
            set_trace_id(None)
        job.wall_s = time.perf_counter() - started
        job.finished_ts = time.time()
        job.spans = TRACER.drain(lambda e: e.trace_id == job.trace_id)
        if outcome == "done":
            _COMPLETED.inc()
            _JOB_WALL.observe(job.wall_s)
        else:
            _FAILED.inc()
        self._finalize(job, outcome)
        # The status flip is the LAST mutation: any reader that observes
        # a finished status also sees the spans/report already attached.
        job.status = outcome
        _live.publish("job", job.event_data())

    def _finalize(self, job: Job, outcome: str) -> None:
        """Per-job run report + the ``serve`` ledger record."""
        stitched = Tracer()
        stitched.absorb(job.spans)
        snapshot = job.to_dict()
        snapshot["status"] = outcome
        job.report = build_run_report(
            ["serve", job.kind],
            job.wall_s or 0.0,
            tracer=stitched,
            extra={"job": snapshot},
        )
        if outcome != "done":
            return
        _history.append_record(
            _history.build_record(
                "serve",
                ["serve", job.kind],
                {
                    f"serve.{job.kind}.wall_s": round(job.wall_s, 6),
                    "serve.queue_wait_s": round(job.queue_wait_s, 6),
                    "serve.jobs.completed": _COMPLETED.value,
                },
            )
        )
