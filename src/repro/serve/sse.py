"""Server-Sent-Events framing over the live telemetry bus.

``GET /events`` streams every :mod:`repro.obs.live` event to the
client as one SSE message (``event:`` = the bus kind, ``data:`` = the
JSON-encoded event).  The stream protocol:

* an opening ``: connected`` comment, then events as they arrive;
* a ``: keepalive`` comment whenever ``heartbeat`` seconds pass with
  no traffic, so proxies and clients can detect a dead connection;
* each client owns a *bounded* bus subscription — a consumer that
  reads slower than the bus publishes loses its oldest events
  (``serve.sse.dropped`` counts them, and a ``: dropped N`` comment
  tells the client its stream has holes) rather than ever blocking
  the publishers;
* a final ``shutdown`` event (published by the serve drain path)
  followed by subscription close ends the stream.
"""

from __future__ import annotations

import json
from typing import Iterator, Sequence

from repro.obs import live
from repro.obs.metrics import counter as _obs_counter, gauge as _obs_gauge

_SSE_EVENTS = _obs_counter("serve.sse.events")
_SSE_DROPPED = _obs_counter("serve.sse.dropped")
_SSE_CLIENTS = _obs_gauge("serve.sse.clients")

#: Seconds of silence before a keepalive comment ships.
DEFAULT_HEARTBEAT = 15.0


def format_event(event: dict) -> bytes:
    """One bus event as an SSE message (named event + JSON data)."""
    data = json.dumps(event, separators=(",", ":"))
    return (
        f"event: {event.get('kind', 'message')}\n"
        f"id: {event.get('seq', '')}\n"
        f"data: {data}\n\n"
    ).encode()


def comment(text: str) -> bytes:
    """An SSE comment line (ignored by EventSource, keeps pipes warm)."""
    return f": {text}\n\n".encode()


def event_stream(
    bus: live.LiveBus,
    heartbeat: float = DEFAULT_HEARTBEAT,
    maxlen: int = live.DEFAULT_QUEUE,
    kinds: Sequence[str] | None = None,
    replay: bool = False,
) -> Iterator[bytes]:
    """Yield SSE chunks until the bus closes the subscription.

    Args:
        bus: The live bus to subscribe to.
        heartbeat: Keepalive interval (seconds of silence).
        maxlen: Per-client bounded queue size.
        kinds: Optional whitelist of event kinds to forward.
        replay: Start with the bus's recent-event ring so a
            late-joining client sees context before live events.
    """
    wanted = None if kinds is None else set(kinds)
    sub = bus.subscribe(maxlen=maxlen)
    _SSE_CLIENTS.set(bus.subscriber_count())
    reported_drops = 0
    try:
        yield comment("connected")
        if replay:
            for event in bus.recent(kinds=kinds):
                _SSE_EVENTS.inc()
                yield format_event(event)
        while True:
            events = sub.get(timeout=heartbeat)
            if sub.dropped > reported_drops:
                delta = sub.dropped - reported_drops
                reported_drops = sub.dropped
                _SSE_DROPPED.inc(delta)
                yield comment(f"dropped {delta}")
            if not events:
                if sub.closed:
                    return
                yield comment("keepalive")
                continue
            for event in events:
                if wanted is not None and event.get("kind") not in wanted:
                    continue
                _SSE_EVENTS.inc()
                yield format_event(event)
    finally:
        bus.unsubscribe(sub)
        _SSE_CLIENTS.set(bus.subscriber_count())
