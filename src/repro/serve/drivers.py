"""Job-kind registry: one serve job = one existing pipeline driver.

Each kind maps a JSON ``params`` dict onto one of the repo's existing
entry points and returns a JSON-serializable result.  Two invariants
matter to the service layer:

* **Canonical parameters** (:func:`canonical_params`): defaults are
  filled in and values coerced to the default's type, so
  ``{"instances": "500"}`` and ``{}``-with-defaults submit *the same*
  job — the dedup key (:func:`repro.serve.jobs.job_key`) hashes the
  canonical form.  Unknown parameter names are rejected up front
  (HTTP 400) rather than surfacing as a confusing driver error.
* **Inherited fan-out**: drivers pass ``jobs=None`` everywhere, so the
  per-job process fan-out resolves through
  :func:`repro.exec.resolve_jobs` to the service's ``--jobs`` setting
  (via :func:`repro.exec.set_default_jobs`).

Results must stay modest in size (they are held in memory and served
as JSON); anything bulky — layout HTML, per-case detail — is dropped
or summarized here.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError

#: kind -> (defaults, driver) registry; see :func:`register_driver`.
DRIVERS: dict[str, tuple[dict, Callable[[dict], dict]]] = {}


def register_driver(kind: str, defaults: dict, fn: Callable[[dict], dict]) -> None:
    """Add (or replace, for tests) one job kind."""
    DRIVERS[kind] = (dict(defaults), fn)


def job_kinds() -> tuple[str, ...]:
    """Registered kinds, sorted."""
    return tuple(sorted(DRIVERS))


def canonical_params(kind: str, params: dict | None) -> dict:
    """Defaults filled in, values coerced, unknown names rejected.

    Coercion targets the *default's* type (int/float/str), so query
    strings and JSON submit identical canonical forms; a default of
    ``None`` passes the value through untouched.
    """
    if kind not in DRIVERS:
        raise ConfigError(
            f"unknown job kind {kind!r} (have: {', '.join(job_kinds())})"
        )
    defaults, _ = DRIVERS[kind]
    params = dict(params or {})
    unknown = sorted(set(params) - set(defaults))
    if unknown:
        raise ConfigError(
            f"unknown {kind} parameter(s): {', '.join(unknown)} "
            f"(have: {', '.join(sorted(defaults))})"
        )
    canonical = dict(defaults)
    for name, value in params.items():
        default = defaults[name]
        if value is None or default is None:
            canonical[name] = value
        elif isinstance(default, bool):
            canonical[name] = value in (True, 1, "1", "true", "yes")
        elif isinstance(default, int):
            canonical[name] = int(value)
        elif isinstance(default, float):
            canonical[name] = float(value)
        else:
            canonical[name] = str(value)
    return canonical


def run_job(kind: str, params: dict) -> dict:
    """Execute one job (params must already be canonical)."""
    _, fn = DRIVERS[kind]
    return fn(params)


# -- the built-in kinds ----------------------------------------------------


def _run_sweep(params: dict) -> dict:
    from repro.dse.sweep import sweep_design_space

    points = sweep_design_space(technology=params["technology"])
    rows = [
        {
            "design": p.name,
            "fmax": p.fmax,
            "area": p.area,
            "power_at_fmax": p.power_at_fmax,
            "gate_count": p.gate_count,
            "dff_count": p.dff_count,
        }
        for p in points
    ]
    return {
        "technology": params["technology"],
        "count": len(rows),
        "points": rows,
    }


def _run_yield(params: dict) -> dict:
    from repro.coregen.config import config_from_name
    from repro.mc.engine import YieldSpec, run_yield_campaign

    spec = YieldSpec(
        config=config_from_name(params["config"]),
        technology=params["technology"],
        program_name=params["program"],
        program_width=params["width"],
        sigma=params["sigma"],
        device_yield=params["device_yield"],
        seed=params["seed"],
    )
    report = run_yield_campaign(spec, params["instances"])
    return report.to_dict()


def _run_campaign(params: dict) -> dict:
    from repro.coregen.config import config_from_name
    from repro.coregen.fault_test import run_fault_campaign
    from repro.programs import build_benchmark

    config = config_from_name(params["config"])
    program = build_benchmark(
        params["program"],
        params["width"],
        config.datawidth,
        num_bars=config.num_bars,
    )
    max_faults = params["max_faults"]
    campaign = run_fault_campaign(
        program,
        config=config,
        stride=params["stride"],
        max_faults=None if max_faults is None else int(max_faults),
        backend=params["backend"],
    )
    return {
        "design": config.name,
        "program": params["program"],
        "backend": params["backend"],
        "total": campaign.total,
        "detected": campaign.detected,
        "coverage": campaign.detected / campaign.total
        if campaign.total
        else 0.0,
        "undetected": len(campaign.undetected_sites),
    }


def _run_verify(params: dict) -> dict:
    from repro.verify.corpus import run_campaign

    result = run_campaign(
        range(params["seeds"]),
        max_cycles=params["max_cycles"],
        shrink_failures=False,
    )
    return {
        "cases": len(result.cases),
        "failures": len(result.failures),
        "ok": result.ok,
        "summary": result.summary(),
        "divergent_seeds": sorted({c.seed for c in result.failures}),
    }


def _run_profile(params: dict) -> dict:
    from repro.apps.profile import profile_design
    from repro.coregen.config import config_from_name

    return profile_design(
        config_from_name(params["config"]),
        program_name=params["program"],
        technology=params["technology"],
        backend=params["backend"],
        max_cycles=params["max_cycles"],
    )


def _run_place(params: dict) -> dict:
    from repro.apps.place import _place_one

    result = _place_one(
        params["fabric"],
        params["technology"],
        params["seed"],
        params["sweeps"],
        params["config"],
    )
    # The self-contained layout page is megabytes of SVG; the service
    # keeps results in memory, so only the measurements survive.
    result.pop("layout_html", None)
    result.pop("fit_text", None)
    return result


register_driver("sweep", {"technology": "EGFET"}, _run_sweep)
register_driver(
    "yield",
    {
        "config": "p1_8_2",
        "technology": "EGFET",
        "program": "mult",
        "width": 8,
        "instances": 500,
        "sigma": 0.2,
        "device_yield": 0.9999,
        "seed": 0xBEEF,
    },
    _run_yield,
)
register_driver(
    "campaign",
    {
        "config": "p1_8_2",
        "program": "mult",
        "width": 8,
        "stride": 8,
        "max_faults": None,
        "backend": "batched",
    },
    _run_campaign,
)
register_driver("verify", {"seeds": 8, "max_cycles": 20000}, _run_verify)
register_driver(
    "profile",
    {
        "config": "p1_8_2",
        "program": "crc8",
        "technology": "EGFET",
        "backend": "compiled",
        "max_cycles": 200_000,
    },
    _run_profile,
)
register_driver(
    "place",
    {
        "config": "p1_8_2",
        "fabric": "medium",
        "technology": "EGFET",
        "seed": 0,
        "sweeps": 10,
    },
    _run_place,
)
