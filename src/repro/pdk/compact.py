"""Analytical transistor-resistor / pseudo-CMOS compact model.

The paper characterizes its standard cells with measurement-calibrated
compact models (EKV-style DC model plus measured gate capacitance).  We
reproduce the *structure* of that flow with a first-order RC model:

* The printed FET is modelled by its saturation on-current
  ``I_on = mu * Cox * (W/L) * (VDD - Vth)^2 / 2`` degraded by an
  empirical ``contact_degradation`` factor that absorbs contact
  resistance and non-quasi-static effects (the dominant non-ideality in
  printed devices, cf. Feng et al.).
* The pull-up is a printed resistor ``R_pullup`` (EGFET) or a
  always-on p-type device (pseudo-CMOS CNT-TFT).
* Gate load is the electrolyte/oxide gate capacitance
  ``C_gate = Cox * W * L`` times fanout.

Rise delay is ``ln(2) * R_pullup * C_load``; fall delay is
``ln(2) * R_on * C_load``.  Energy per switching event is dynamic
``C_load * VDD^2`` plus the static burn through the pull-up while the
output is held low for one characterization period (transistor-resistor
logic draws DC current in that state -- this term dominates for EGFET,
which is why e.g. a NOR2 costs 48x the energy of an inverter while
being only 1.6x larger).

The model is used for *cross-validation* of the published Table 2
values (see :mod:`repro.pdk.characterize`), not as their source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PDKError

LN2 = math.log(2.0)


@dataclass(frozen=True)
class DeviceParams:
    """Physical parameters of one printed transistor technology.

    Attributes:
        mobility: Field-effect mobility in m^2/Vs.
        cox: Gate capacitance per area in F/m^2 (electrolyte gating
            makes this very large for EGFET).
        width: Channel width in metres.
        length: Channel length in metres.
        vth: Threshold voltage in volts.
        vdd: Nominal supply voltage in volts.
        contact_degradation: Dimensionless factor (>= 1) by which the
            ideal square-law on-current is reduced; calibrated against
            measured inverter delay.
        pullup_ratio: R_pullup / R_on ratio (sets the low-level noise
            margin of transistor-resistor logic).
        hold_time: Characterization period in seconds over which the
            static pull-up current is integrated into the per-switch
            energy figure.
    """

    mobility: float
    cox: float
    width: float
    length: float
    vth: float
    vdd: float
    contact_degradation: float = 1.0
    pullup_ratio: float = 7.0
    hold_time: float = 0.0

    def __post_init__(self) -> None:
        if self.vdd <= self.vth:
            raise PDKError("vdd must exceed vth for the device to switch")
        if self.contact_degradation < 1.0:
            raise PDKError("contact_degradation must be >= 1")

    @property
    def gate_capacitance(self) -> float:
        """Gate capacitance of one device in farads."""
        return self.cox * self.width * self.length

    @property
    def on_current(self) -> float:
        """Saturation on-current in amperes (degraded square law)."""
        ideal = (
            0.5
            * self.mobility
            * self.cox
            * (self.width / self.length)
            * (self.vdd - self.vth) ** 2
        )
        return ideal / self.contact_degradation

    @property
    def on_resistance(self) -> float:
        """Equivalent pull-down resistance in ohms."""
        return self.vdd / self.on_current

    @property
    def pullup_resistance(self) -> float:
        """Printed pull-up resistor value in ohms."""
        return self.pullup_ratio * self.on_resistance


@dataclass(frozen=True)
class GateTopology:
    """Circuit-level shape of a logic cell in transistor-resistor style.

    Attributes:
        name: Cell name the topology corresponds to.
        stages: Number of cascaded resistor-load stages on the critical
            path through the cell (an AND2 is a NAND2 + INV = 2 stages).
        series_devices: Maximum pull-down stack depth (series devices
            slow the falling edge proportionally).
        pullups: Number of pull-up resistors (sets static energy).
        fanin: Number of logic inputs (sets input load seen by drivers).
        internal_load: Extra internal capacitive load in units of one
            gate capacitance (wiring + internal nodes).
    """

    name: str
    stages: int
    series_devices: int
    pullups: int
    fanin: int
    internal_load: float = 0.0


#: Transistor-resistor topologies for the library cells.  Stage and
#: stack counts follow the canonical realizations described in
#: Section 3 of the paper (DFF = two cascaded latches, XOR from
#: two-level NAND structure, etc.).
STANDARD_TOPOLOGIES: dict[str, GateTopology] = {
    "INVX1": GateTopology("INVX1", stages=1, series_devices=1, pullups=1, fanin=1),
    "NAND2X1": GateTopology("NAND2X1", stages=1, series_devices=2, pullups=1, fanin=2),
    "NOR2X1": GateTopology("NOR2X1", stages=1, series_devices=1, pullups=1, fanin=2, internal_load=0.5),
    "AND2X1": GateTopology("AND2X1", stages=2, series_devices=2, pullups=2, fanin=2),
    "OR2X1": GateTopology("OR2X1", stages=2, series_devices=1, pullups=2, fanin=2, internal_load=0.5),
    "XOR2X1": GateTopology("XOR2X1", stages=3, series_devices=2, pullups=3, fanin=2, internal_load=1.0),
    "XNOR2X1": GateTopology("XNOR2X1", stages=3, series_devices=2, pullups=4, fanin=2, internal_load=1.5),
    "LATCHX1": GateTopology("LATCHX1", stages=2, series_devices=2, pullups=2, fanin=2, internal_load=0.5),
    "DFFX1": GateTopology("DFFX1", stages=4, series_devices=2, pullups=4, fanin=2, internal_load=1.0),
    "DFFNRX1": GateTopology("DFFNRX1", stages=4, series_devices=3, pullups=6, fanin=3, internal_load=2.0),
    "TSBUFX1": GateTopology("TSBUFX1", stages=2, series_devices=2, pullups=2, fanin=2),
}


@dataclass(frozen=True)
class GateEstimate:
    """Delay/energy estimate for one cell from the compact model."""

    name: str
    rise_delay: float
    fall_delay: float
    energy: float


def estimate_gate(
    params: DeviceParams, topology: GateTopology, fanout: float = 1.0
) -> GateEstimate:
    """Estimate rise/fall delay and switching energy for one cell.

    Args:
        params: Technology device parameters.
        topology: Circuit shape of the cell.
        fanout: Number of downstream gate inputs driven by the output.

    Returns:
        A :class:`GateEstimate` with SI-unit values.
    """
    c_gate = params.gate_capacitance
    c_load = (fanout + topology.internal_load) * c_gate
    # Each cascaded stage adds one R*C charge/discharge on the path.
    rise = LN2 * params.pullup_resistance * c_load * topology.stages
    fall = (
        LN2
        * params.on_resistance
        * topology.series_devices
        * c_load
        * topology.stages
    )
    dynamic = topology.stages * c_load * params.vdd**2
    # Static burn: each pull-up conducts while its output is low;
    # assume half the pull-ups are in that state over the hold period.
    static_current = 0.5 * topology.pullups * params.vdd / params.pullup_resistance
    static = static_current * params.vdd * params.hold_time
    return GateEstimate(topology.name, rise, fall, dynamic + static)


def estimate_all(
    params: DeviceParams, fanout: float = 1.0
) -> dict[str, GateEstimate]:
    """Estimate every cell in :data:`STANDARD_TOPOLOGIES`."""
    return {
        name: estimate_gate(params, topo, fanout)
        for name, topo in STANDARD_TOPOLOGIES.items()
    }
