"""Process variation and functional-yield models for printed logic.

Printed devices vary enormously die-to-die (the EGFET literature the
paper builds on reports sigma(Vth) of tens of millivolts and measured
device yields of 90-99%, Section 3.1).  Two consequences for
microprocessors, both quantified here:

* **Timing spread** -- Monte-Carlo STA with lognormal per-instance
  delay multipliers gives the fmax distribution and a yield-aware
  clock (the frequency met by e.g. 95% of printed units).
* **Functional yield** -- with per-device yield ``y`` a design of
  ``n`` printed devices works with probability ``y^n``; printed
  microprocessors must therefore be *small*, reinforcing the paper's
  minimal-gate-count ISA argument from a different direction.

Randomness is the deterministic **stream-split counter scheme** of
:mod:`repro.mc.sampling`: cell instance ``k`` owns substream ``k``
(domain ``"timing"``), and printed unit ``t`` consumes draw index
``t`` of every substream.  A sample is a pure hash of ``(seed, cell,
unit)`` -- *not* a position in one sequential stream -- so unit ``t``
gets identical factors whether a campaign runs 10 trials or 10^6,
serial or sharded.  :func:`monte_carlo_timing` below is the *scalar
reference path* for that scheme; the vectorized fleet engine
(:mod:`repro.mc.timing`) produces bit-identical delays at equal unit
indices, and ``tests/mc/test_timing.py`` asserts it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import PDKError
from repro.netlist.core import CONST0, CONST1, Netlist, SEQUENTIAL_CELLS
from repro.netlist.sta import _topological_order
from repro.pdk.cells import CellLibrary

#: Measured EGFET per-device yield range (Section 3.1).
EGFET_DEVICE_YIELD_RANGE = (0.90, 0.99)


@dataclass(frozen=True)
class TimingDistribution:
    """Monte-Carlo fmax statistics for one netlist."""

    samples: tuple[float, ...]  # critical-path delays, seconds

    @property
    def nominal_fmax(self) -> float:
        return 1.0 / min(self.samples)

    @property
    def mean_delay(self) -> float:
        return sum(self.samples) / len(self.samples)

    def yield_fmax(self, coverage: float = 0.95) -> float:
        """The clock frequency met by ``coverage`` of printed units."""
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(math.ceil(coverage * len(ordered))) - 1)
        return 1.0 / ordered[index]


def monte_carlo_timing(
    netlist: Netlist,
    library: CellLibrary,
    sigma: float = 0.2,
    trials: int = 64,
    seed: int = 0xBEEF,
) -> TimingDistribution:
    """Sample the critical-path delay under per-instance variation.

    Each cell instance's delay is scaled by an independent lognormal
    factor ``exp(sigma * N(0,1))`` per trial; propagation uses the
    worst-edge delay for speed (the spread, not the absolute value, is
    the quantity of interest).

    This is the **scalar reference path** of the Monte-Carlo engine:
    trial ``t`` draws from each cell substream at index ``t`` (the
    stream-split scheme documented in :mod:`repro.mc.sampling`), so
    trial ``t``'s factors are a pure function of ``(seed, cell, t)``
    -- independent of the trial count and of any shard boundary -- and
    ``repro.mc.timing.sample_delays(netlist, library, sigma, 0,
    trials, seed)`` returns exactly ``self.samples``.  The float
    transform deliberately routes through numpy scalar ufuncs (not
    ``math.*``) so scalar and vectorized samples are bit-identical.
    """
    if sigma < 0:
        raise PDKError("sigma must be non-negative")
    from repro.mc.sampling import SubstreamSampler
    from repro.mc.timing import TIMING_DOMAIN

    order = _topological_order(netlist)
    base_delay = [library.cell(i.cell).worst_delay for i in netlist.instances]
    index_of = {id(instance): k for k, instance in enumerate(netlist.instances)}
    sampler = SubstreamSampler(seed, len(netlist.instances), TIMING_DOMAIN)
    sigma64 = np.float64(sigma)

    samples = []
    for trial in range(trials):
        factors = [
            float(np.exp(sigma64 * sampler.normal(k, trial)))
            for k in range(len(netlist.instances))
        ]
        arrival: dict[int, float] = {CONST0: 0.0, CONST1: 0.0}
        for bus in netlist.inputs.values():
            for net in bus:
                arrival[net] = 0.0
        for instance in netlist.instances:
            if instance.cell in SEQUENTIAL_CELLS:
                k = index_of[id(instance)]
                arrival[instance.output] = base_delay[k] * factors[k]
        worst = 0.0
        for instance in order:
            k = index_of[id(instance)]
            in_time = max((arrival.get(net, 0.0) for net in instance.inputs), default=0.0)
            arrival[instance.output] = in_time + base_delay[k] * factors[k]
        for instance in netlist.instances:
            if instance.cell in SEQUENTIAL_CELLS:
                for net in instance.inputs:
                    worst = max(worst, arrival.get(net, 0.0))
        for bus in netlist.outputs.values():
            for net in bus:
                worst = max(worst, arrival.get(net, 0.0))
        samples.append(worst)
    return TimingDistribution(samples=tuple(samples))


def functional_yield(device_count: int, device_yield: float) -> float:
    """Probability that all ``device_count`` printed devices work."""
    if not 0.0 < device_yield <= 1.0:
        raise PDKError(f"device yield {device_yield} out of (0, 1]")
    return device_yield**device_count


def cost_per_working_unit(area: float, design_yield: float) -> float:
    """Expected printed area per *working* unit (area / yield).

    With maskless printing, a failed unit costs only its materials and
    print time -- both area-proportional -- so area/yield is the right
    figure of merit for comparing core sizes under yield.
    """
    if design_yield <= 0:
        return float("inf")
    return area / design_yield


def required_device_yield(device_count: int, target_yield: float) -> float:
    """Per-device yield needed for a design-level target."""
    if not 0.0 < target_yield < 1.0:
        raise PDKError(f"target yield {target_yield} out of (0, 1)")
    return target_yield ** (1.0 / device_count)
