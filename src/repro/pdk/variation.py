"""Process variation and functional-yield models for printed logic.

Printed devices vary enormously die-to-die (the EGFET literature the
paper builds on reports sigma(Vth) of tens of millivolts and measured
device yields of 90-99%, Section 3.1).  Two consequences for
microprocessors, both quantified here:

* **Timing spread** -- Monte-Carlo STA with lognormal per-instance
  delay multipliers gives the fmax distribution and a yield-aware
  clock (the frequency met by e.g. 95% of printed units).
* **Functional yield** -- with per-device yield ``y`` a design of
  ``n`` printed devices works with probability ``y^n``; printed
  microprocessors must therefore be *small*, reinforcing the paper's
  minimal-gate-count ISA argument from a different direction.

Randomness is a deterministic LCG (reproducible runs, no global
state).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PDKError
from repro.netlist.core import CONST0, CONST1, Netlist, SEQUENTIAL_CELLS
from repro.netlist.sta import _topological_order
from repro.pdk.cells import CellLibrary

#: Measured EGFET per-device yield range (Section 3.1).
EGFET_DEVICE_YIELD_RANGE = (0.90, 0.99)


def _lcg_gauss(seed: int):
    """Deterministic standard-normal stream (Box-Muller over an LCG)."""
    state = seed & 0x7FFFFFFF or 1

    def uniform() -> float:
        nonlocal state
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        return (state + 1) / (0x7FFFFFFF + 2)

    while True:
        u1, u2 = uniform(), uniform()
        radius = math.sqrt(-2.0 * math.log(u1))
        yield radius * math.cos(2 * math.pi * u2)
        yield radius * math.sin(2 * math.pi * u2)


@dataclass(frozen=True)
class TimingDistribution:
    """Monte-Carlo fmax statistics for one netlist."""

    samples: tuple[float, ...]  # critical-path delays, seconds

    @property
    def nominal_fmax(self) -> float:
        return 1.0 / min(self.samples)

    @property
    def mean_delay(self) -> float:
        return sum(self.samples) / len(self.samples)

    def yield_fmax(self, coverage: float = 0.95) -> float:
        """The clock frequency met by ``coverage`` of printed units."""
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(math.ceil(coverage * len(ordered))) - 1)
        return 1.0 / ordered[index]


def monte_carlo_timing(
    netlist: Netlist,
    library: CellLibrary,
    sigma: float = 0.2,
    trials: int = 64,
    seed: int = 0xBEEF,
) -> TimingDistribution:
    """Sample the critical-path delay under per-instance variation.

    Each cell instance's delay is scaled by an independent lognormal
    factor ``exp(sigma * N(0,1))`` per trial; propagation uses the
    worst-edge delay for speed (the spread, not the absolute value, is
    the quantity of interest).
    """
    if sigma < 0:
        raise PDKError("sigma must be non-negative")
    order = _topological_order(netlist)
    base_delay = [library.cell(i.cell).worst_delay for i in netlist.instances]
    index_of = {id(instance): k for k, instance in enumerate(netlist.instances)}
    gauss = _lcg_gauss(seed)

    samples = []
    for _ in range(trials):
        factors = [math.exp(sigma * next(gauss)) for _ in netlist.instances]
        arrival: dict[int, float] = {CONST0: 0.0, CONST1: 0.0}
        for bus in netlist.inputs.values():
            for net in bus:
                arrival[net] = 0.0
        for instance in netlist.instances:
            if instance.cell in SEQUENTIAL_CELLS:
                k = index_of[id(instance)]
                arrival[instance.output] = base_delay[k] * factors[k]
        worst = 0.0
        for instance in order:
            k = index_of[id(instance)]
            in_time = max((arrival.get(net, 0.0) for net in instance.inputs), default=0.0)
            arrival[instance.output] = in_time + base_delay[k] * factors[k]
        for instance in netlist.instances:
            if instance.cell in SEQUENTIAL_CELLS:
                for net in instance.inputs:
                    worst = max(worst, arrival.get(net, 0.0))
        for bus in netlist.outputs.values():
            for net in bus:
                worst = max(worst, arrival.get(net, 0.0))
        samples.append(worst)
    return TimingDistribution(samples=tuple(samples))


def functional_yield(device_count: int, device_yield: float) -> float:
    """Probability that all ``device_count`` printed devices work."""
    if not 0.0 < device_yield <= 1.0:
        raise PDKError(f"device yield {device_yield} out of (0, 1]")
    return device_yield**device_count


def cost_per_working_unit(area: float, design_yield: float) -> float:
    """Expected printed area per *working* unit (area / yield).

    With maskless printing, a failed unit costs only its materials and
    print time -- both area-proportional -- so area/yield is the right
    figure of merit for comparing core sizes under yield.
    """
    if design_yield <= 0:
        return float("inf")
    return area / design_yield


def required_device_yield(device_count: int, target_yield: float) -> float:
    """Per-device yield needed for a design-level target."""
    if not 0.0 < target_yield < 1.0:
        raise PDKError(f"target yield {target_yield} out of (0, 1)")
    return target_yield ** (1.0 / device_count)
