"""Process design kit (PDK) layer: printed standard-cell libraries.

This package models the two low-voltage printed technologies the paper
characterizes:

* :mod:`repro.pdk.egfet` -- inkjet-printed electrolyte-gated FET
  (EGFET) technology at VDD = 1 V.  Only n-type devices exist, so logic
  is built in transistor-resistor style; cells are large and slow but
  the process is fully additive and cheap.
* :mod:`repro.pdk.cnt` -- shadow-mask printed carbon-nanotube thin-film
  transistor (CNT-TFT) technology at VDD = 3 V.  Only p-type devices
  are used, in pseudo-CMOS style; cells are ~100x smaller and ~1000x
  faster but the subtractive process is far more expensive.

Cell characteristics are the paper's measured Table 2 values.  The
:mod:`repro.pdk.compact` module additionally provides an analytical
transistor-resistor RC model from which :mod:`repro.pdk.characterize`
can re-derive delay and energy numbers for cross-validation.
"""

from repro.errors import ConfigError
from repro.pdk.cells import CellKind, StandardCell, CellLibrary
from repro.pdk.egfet import egfet_library
from repro.pdk.cnt import cnt_tft_library
from repro.pdk.liberty import dump_liberty, load_liberty

#: Canonical technology names (user-facing aliases normalize to these).
TECHNOLOGIES = ("EGFET", "CNT")


def canonical_technology(technology: str) -> str:
    """Normalize a technology name to its canonical spelling.

    The CNT-TFT library answers to both ``"CNT"`` and ``"CNT-TFT"``;
    evaluation caches key on the string, so every API boundary
    normalizes through here (canonical ``"CNT"``) before caching or
    storing the name on a result.

    Raises:
        ConfigError: For names that match no printed technology.
    """
    if technology == "EGFET":
        return "EGFET"
    if technology in ("CNT", "CNT-TFT"):
        return "CNT"
    raise ConfigError(f"unknown technology {technology!r}")


def technology_library(technology: str) -> CellLibrary:
    """The standard-cell library for ``technology`` (aliases accepted)."""
    return (
        egfet_library()
        if canonical_technology(technology) == "EGFET"
        else cnt_tft_library()
    )


__all__ = [
    "CellKind",
    "StandardCell",
    "CellLibrary",
    "TECHNOLOGIES",
    "canonical_technology",
    "technology_library",
    "egfet_library",
    "cnt_tft_library",
    "dump_liberty",
    "load_liberty",
]
