"""CNT-TFT standard-cell library (Table 2, VDD = 3 V).

Carbon-nanotube thin-film transistors are printed through a subtractive
shadow-mask route.  Device yield mismatch between p- and n-type devices
means circuits are built from p-type TFTs only, in pseudo-CMOS style,
which restores reasonably symmetric rise/fall edges at the cost of
extra devices per gate.  Compared with EGFET, CNT-TFT cells are roughly
two orders of magnitude smaller and three to four orders of magnitude
faster, but the process is expensive and needs a 3 V supply.

Values are the paper's Table 2 characterization at VDD = 3 V.
Transistor counts follow pseudo-CMOS realizations (4 devices per
inverter stage).
"""

from __future__ import annotations

from functools import lru_cache

from repro.pdk.cells import CellKind, CellLibrary, build_cells
from repro.units import mm2, nJ, us

_C = CellKind.COMBINATIONAL
_S = CellKind.SEQUENTIAL
_T = CellKind.TRISTATE

#: Table 2 CNT-TFT rows: (kind, area, energy, rise, fall, inputs, T, R).
_CNT_ROWS = {
    "INVX1": (_C, mm2(0.002), nJ(0.093), us(0.058), us(2.9), 1, 4, 0),
    "NAND2X1": (_C, mm2(0.003), nJ(10.01), us(0.088), us(7.99), 2, 6, 0),
    "NOR2X1": (_C, mm2(0.003), nJ(18.61), us(0.108), us(3.65), 2, 6, 0),
    "AND2X1": (_C, mm2(0.005), nJ(18.35), us(0.171), us(8.05), 2, 10, 0),
    "OR2X1": (_C, mm2(0.005), nJ(21.33), us(0.121), us(4.10), 2, 10, 0),
    "XOR2X1": (_C, mm2(0.012), nJ(36.7), us(1.908), us(5.65), 2, 16, 0),
    "XNOR2X1": (_C, mm2(0.014), nJ(37.1), us(2.118), us(5.97), 2, 18, 0),
    "LATCHX1": (_S, mm2(0.006), nJ(19.55), us(0.221), us(3.75), 2, 12, 0),
    "DFFX1": (_S, mm2(0.018), nJ(41.5), us(3.78), us(4.19), 2, 24, 0),
    "DFFNRX1": (_S, mm2(0.042), nJ(50.7), us(8.61), us(8.77), 3, 32, 0),
    "TSBUFX1": (_T, mm2(0.003), nJ(19.5), us(0.109), us(2.83), 2, 8, 0),
}

#: Semiconducting-CNT field-effect mobility in cm^2/Vs (Table 1).
CNT_MOBILITY_CM2_VS = 25.0

#: Typical CNT-TFT channel length in metres (several-micron features).
CNT_CHANNEL_LENGTH_M = 4e-6

#: Printed-interconnect parasitics per metre of routed trace.  Not
#: characterized by the paper; engineering estimates for the narrower
#: shadow-mask traces, scaled so a route a few (sub-mm) cell pitches
#: long costs a fraction of one gate-input load -- the same relative
#: weighting as the EGFET constants.
CNT_WIRE_RESISTANCE_OHM_M = 5_000.0
CNT_WIRE_CAPACITANCE_F_M = 1e-9

#: Characteristic gate-input capacitance, consistent with Table 2
#: switching energies at VDD = 3 V (E ~ C * VDD^2).
CNT_INPUT_CAPACITANCE_F = 1e-11


@lru_cache(maxsize=1)
def cnt_tft_library() -> CellLibrary:
    """Return the CNT-TFT standard-cell library at VDD = 3 V.

    The returned library is cached and immutable; callers share one
    instance.
    """
    return CellLibrary(
        name="CNT-TFT",
        vdd=3.0,
        logic_family="pseudo-CMOS (p-type only)",
        printing_route="subtractive solution/shadow-mask",
        cells=build_cells(_CNT_ROWS),
        mobility=CNT_MOBILITY_CM2_VS,
        feature_length=CNT_CHANNEL_LENGTH_M,
        wire_resistance=CNT_WIRE_RESISTANCE_OHM_M,
        wire_capacitance=CNT_WIRE_CAPACITANCE_F_M,
        input_capacitance=CNT_INPUT_CAPACITANCE_F,
        notes=(
            "Ultrahigh-purity semiconducting CNT channel; pseudo-CMOS "
            "styling compensates single-polarity devices at the cost of "
            "device count and a 3 V supply."
        ),
    )
