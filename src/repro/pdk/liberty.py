"""Minimal Liberty-style text serialization for cell libraries.

The paper open-sourced its libraries in synthesis-ready form; this
module provides the equivalent artifact for our models: a compact,
human-diffable text format loosely following Liberty's
``library { cell { ... } }`` nesting, plus a loader so round-tripping
is lossless.  Only the attributes our flow uses are serialized.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import PDKError
from repro.pdk.cells import CellKind, CellLibrary, StandardCell

_FLOAT = r"[-+0-9.eE]+"


def dump_liberty(library: CellLibrary) -> str:
    """Render ``library`` as Liberty-style text."""
    lines = [
        f'library ("{library.name}") {{',
        f"  voltage : {library.vdd};",
        f'  logic_family : "{library.logic_family}";',
        f'  printing_route : "{library.printing_route}";',
        f"  mobility : {library.mobility};",
        f"  feature_length : {library.feature_length!r};",
        f"  wire_resistance : {library.wire_resistance!r};",
        f"  wire_capacitance : {library.wire_capacitance!r};",
        f"  input_capacitance : {library.input_capacitance!r};",
    ]
    for cell in library:
        lines.extend(_dump_cell(cell))
    lines.append("}")
    return "\n".join(lines) + "\n"


def _dump_cell(cell: StandardCell) -> Iterator[str]:
    yield f'  cell ("{cell.name}") {{'
    yield f'    kind : "{cell.kind.value}";'
    yield f"    area : {cell.area!r};"
    yield f"    energy : {cell.energy!r};"
    yield f"    rise_delay : {cell.rise_delay!r};"
    yield f"    fall_delay : {cell.fall_delay!r};"
    yield f"    inputs : {cell.inputs};"
    yield f"    transistors : {cell.transistors};"
    yield f"    resistors : {cell.resistors};"
    yield "  }"


_LIBRARY_RE = re.compile(r'library\s*\(\s*"([^"]+)"\s*\)\s*\{')
_CELL_RE = re.compile(r'cell\s*\(\s*"([^"]+)"\s*\)\s*\{')
_ATTR_RE = re.compile(r'(\w+)\s*:\s*("?)([^";]*)\2\s*;')


def load_liberty(text: str) -> CellLibrary:
    """Parse Liberty-style text produced by :func:`dump_liberty`.

    Raises:
        PDKError: If the text is not a well-formed library block.
    """
    library_match = _LIBRARY_RE.search(text)
    if library_match is None:
        raise PDKError("no library block found")
    name = library_match.group(1)

    header: dict[str, str] = {}
    cells: dict[str, StandardCell] = {}

    # Split the body at cell boundaries: attrs before the first cell
    # belong to the library header.
    cell_spans = list(_CELL_RE.finditer(text))
    header_end = cell_spans[0].start() if cell_spans else len(text)
    for match in _ATTR_RE.finditer(text[library_match.end() : header_end]):
        header[match.group(1)] = match.group(3)

    for index, cell_match in enumerate(cell_spans):
        end = cell_spans[index + 1].start() if index + 1 < len(cell_spans) else len(text)
        attrs = {
            m.group(1): m.group(3)
            for m in _ATTR_RE.finditer(text[cell_match.end() : end])
        }
        cell_name = cell_match.group(1)
        try:
            cells[cell_name] = StandardCell(
                name=cell_name,
                kind=CellKind(attrs["kind"]),
                area=float(attrs["area"]),
                energy=float(attrs["energy"]),
                rise_delay=float(attrs["rise_delay"]),
                fall_delay=float(attrs["fall_delay"]),
                inputs=int(attrs["inputs"]),
                transistors=int(attrs["transistors"]),
                resistors=int(attrs["resistors"]),
            )
        except (KeyError, ValueError) as exc:
            raise PDKError(f"cell {cell_name!r}: bad or missing attribute: {exc}") from exc

    try:
        return CellLibrary(
            name=name,
            vdd=float(header["voltage"]),
            logic_family=header["logic_family"],
            printing_route=header["printing_route"],
            cells=cells,
            mobility=float(header["mobility"]),
            feature_length=float(header["feature_length"]),
            # Wire parasitics were added after the first dumps; older
            # files load as uncharacterized (wire-blind) libraries.
            wire_resistance=float(header.get("wire_resistance", 0.0)),
            wire_capacitance=float(header.get("wire_capacitance", 0.0)),
            input_capacitance=float(header.get("input_capacitance", 0.0)),
        )
    except (KeyError, ValueError) as exc:
        raise PDKError(f"library {name!r}: bad or missing attribute: {exc}") from exc
