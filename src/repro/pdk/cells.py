"""Standard-cell and cell-library data structures.

A :class:`StandardCell` carries the characterized physical properties of
one library cell (area, switching energy, rise/fall delay, device
counts).  A :class:`CellLibrary` is an immutable collection of cells
plus process-level metadata (supply voltage, logic family, printing
route).  All values are stored in SI units (m^2, J, s); constructors in
:mod:`repro.pdk.egfet` / :mod:`repro.pdk.cnt` convert from the paper's
mm^2 / nJ / us literals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import PDKError, UnknownCellError


class CellKind(enum.Enum):
    """Functional classification of a library cell.

    The paper's key architectural observations (single-stage pipelines,
    register-free ISAs) hinge on the cost gap between sequential and
    combinational cells, so the kind is a first-class attribute.
    """

    COMBINATIONAL = "combinational"
    SEQUENTIAL = "sequential"
    TRISTATE = "tristate"


@dataclass(frozen=True)
class StandardCell:
    """One characterized standard cell.

    Attributes:
        name: Library cell name (e.g. ``"NAND2X1"``).
        kind: Sequential / combinational / tristate classification.
        area: Printed footprint in m^2.
        energy: Energy per output switching event in J.
        rise_delay: Worst-case output rise delay in seconds.
        fall_delay: Worst-case output fall delay in seconds.
        inputs: Number of logic inputs (clock excluded for sequentials).
        transistors: Printed transistor count (estimate for layout
            bookkeeping; EGFET cells additionally use pull-up resistors).
        resistors: Printed pull-up resistor count (0 for pseudo-CMOS).
    """

    name: str
    kind: CellKind
    area: float
    energy: float
    rise_delay: float
    fall_delay: float
    inputs: int
    transistors: int
    resistors: int = 0

    def __post_init__(self) -> None:
        if self.area <= 0 or self.energy <= 0:
            raise PDKError(f"cell {self.name!r}: area/energy must be positive")
        if self.rise_delay <= 0 or self.fall_delay <= 0:
            raise PDKError(f"cell {self.name!r}: delays must be positive")
        if self.inputs < 1:
            raise PDKError(f"cell {self.name!r}: needs at least one input")

    @property
    def worst_delay(self) -> float:
        """Pessimistic propagation delay: max of rise and fall."""
        return max(self.rise_delay, self.fall_delay)

    @property
    def mean_delay(self) -> float:
        """Typical propagation delay: mean of rise and fall.

        Printed transistor-resistor logic is extremely asymmetric (the
        resistive pull-up is slow), so sustained toggling alternates
        rise and fall; the mean is the per-transition average the paper
        uses when quoting ring-oscillator style frequencies.
        """
        return 0.5 * (self.rise_delay + self.fall_delay)

    @property
    def is_sequential(self) -> bool:
        """Whether the cell stores state (latch or flip-flop)."""
        return self.kind is CellKind.SEQUENTIAL


@dataclass(frozen=True)
class CellLibrary:
    """An immutable printed standard-cell library.

    Attributes:
        name: Short technology name (``"EGFET"`` or ``"CNT-TFT"``).
        vdd: Nominal supply voltage in volts.
        logic_family: Human-readable circuit style.
        printing_route: Additive/subtractive processing route.
        cells: Mapping from cell name to :class:`StandardCell`.
        mobility: Field-effect mobility in cm^2/Vs (Table 1 context).
        feature_length: Typical channel length in metres.
        wire_resistance: Printed-trace sheet resistance per unit
            length, in ohms/metre (0.0 = uncharacterized; wire-aware
            analyses then add no resistive delay).
        wire_capacitance: Printed-trace capacitance per unit length,
            in farads/metre.
        input_capacitance: Characteristic gate-input capacitance in
            farads -- the unit that converts routed wire capacitance
            into fanout-equivalent loads in the shared net-load model
            (:mod:`repro.netlist.load`).
    """

    name: str
    vdd: float
    logic_family: str
    printing_route: str
    cells: Mapping[str, StandardCell]
    mobility: float
    feature_length: float
    wire_resistance: float = 0.0
    wire_capacitance: float = 0.0
    input_capacitance: float = 0.0
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise PDKError(f"library {self.name!r}: vdd must be positive")
        if not self.cells:
            raise PDKError(f"library {self.name!r}: no cells")
        if (
            self.wire_resistance < 0
            or self.wire_capacitance < 0
            or self.input_capacitance < 0
        ):
            raise PDKError(
                f"library {self.name!r}: wire/input parasitics must be >= 0"
            )

    def __iter__(self) -> Iterator[StandardCell]:
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def cell(self, name: str) -> StandardCell:
        """Return the cell called ``name``.

        Raises:
            UnknownCellError: If the library has no such cell.
        """
        try:
            return self.cells[name]
        except KeyError:
            raise UnknownCellError(name, self.name) from None

    def sequential_cells(self) -> list[StandardCell]:
        """All state-holding cells in the library."""
        return [c for c in self if c.is_sequential]

    def combinational_cells(self) -> list[StandardCell]:
        """All purely combinational cells in the library."""
        return [c for c in self if c.kind is CellKind.COMBINATIONAL]

    def dff_to_inverter_area_ratio(self) -> float:
        """Area cost of a DFF in inverter-equivalents.

        This single number drives the paper's headline microarchitecture
        conclusion: when it is large, pipeline registers and register
        files are unaffordable.
        """
        return self.cell("DFFX1").area / self.cell("INVX1").area


def build_cells(
    rows: Mapping[str, tuple[CellKind, float, float, float, float, int, int, int]],
) -> dict[str, StandardCell]:
    """Build a cell dict from compact characterization rows.

    Each row is ``(kind, area_m2, energy_j, rise_s, fall_s, inputs,
    transistors, resistors)`` keyed by cell name.  Shared by the EGFET
    and CNT-TFT library constructors.
    """
    return {
        name: StandardCell(
            name=name,
            kind=kind,
            area=area,
            energy=energy,
            rise_delay=rise,
            fall_delay=fall,
            inputs=inputs,
            transistors=transistors,
            resistors=resistors,
        )
        for name, (kind, area, energy, rise, fall, inputs, transistors, resistors) in rows.items()
    }
