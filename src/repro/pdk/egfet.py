"""EGFET standard-cell library (Table 2, VDD = 1 V).

Electrolyte-gated FETs are inkjet printed (fully additive route) with an
In2O3 channel between ITO source/drain electrodes, a solid composite
electrolyte as the gate dielectric, and a PEDOT:PSS top gate.  Only
n-type devices exist, so cells use transistor-resistor logic: a printed
resistor pulls the output high and an EGFET network pulls it low.  That
is why rise delays dwarf fall delays and why sequential cells (which
stack several resistor stages) are disproportionately expensive.

Area / energy / delay values below are the paper's measured Table 2
characterization at VDD = 1 V.  Transistor/resistor counts follow the
standard transistor-resistor realizations (INV = 1T+1R, NAND2 = 2T+1R,
AND2 = NAND2 + INV, XOR2 from two-level gates, DFF from two latches).
"""

from __future__ import annotations

from functools import lru_cache

from repro.pdk.cells import CellKind, CellLibrary, build_cells
from repro.units import mm2, nJ, us

_C = CellKind.COMBINATIONAL
_S = CellKind.SEQUENTIAL
_T = CellKind.TRISTATE

#: Table 2 EGFET rows: (kind, area, energy, rise, fall, inputs, T, R).
_EGFET_ROWS = {
    "INVX1": (_C, mm2(0.224), nJ(9.8), us(1212), us(174), 1, 1, 1),
    "NAND2X1": (_C, mm2(0.247), nJ(12.1), us(1557), us(986), 2, 2, 1),
    "NOR2X1": (_C, mm2(0.399), nJ(580), us(1830), us(904), 2, 2, 1),
    "AND2X1": (_C, mm2(0.433), nJ(584.1), us(2101), us(1284), 2, 3, 2),
    "OR2X1": (_C, mm2(0.563), nJ(603), us(2040), us(1271), 2, 3, 2),
    "XOR2X1": (_C, mm2(1.04), nJ(1460), us(5474), us(4982), 2, 6, 3),
    "XNOR2X1": (_C, mm2(1.34), nJ(1510), us(6159), us(3420), 2, 7, 4),
    "LATCHX1": (_S, mm2(0.58), nJ(624), us(2643), us(942), 2, 4, 2),
    "DFFX1": (_S, mm2(1.41), nJ(2360), us(6149), us(3923), 2, 8, 4),
    "DFFNRX1": (_S, mm2(2.77), nJ(3941), us(5935), us(4453), 3, 12, 6),
    "TSBUFX1": (_T, mm2(0.446), nJ(597), us(2553), us(1004), 2, 3, 2),
}

#: Typical EGFET channel length (paper Section 3.1): 60 um, scalable
#: to ~10 um before short-channel effects appear.
EGFET_CHANNEL_LENGTH_M = 60e-6

#: In2O3 field-effect mobility in cm^2/Vs (Table 1).
EGFET_MOBILITY_CM2_VS = 126.0

#: Measured device yield range reported in Section 3.1.
EGFET_YIELD_RANGE = (0.90, 0.99)

#: Printed-interconnect parasitics per metre of routed trace.  The
#: paper characterizes cells, not wires, so these are engineering
#: estimates for wide inkjet-printed conductive traces on foil, scaled
#: to the technology's own loads: EGFET gate inputs are electrolyte
#: capacitors of order :data:`EGFET_INPUT_CAPACITANCE_F`, so a route a
#: few cell pitches long (cells are mm-scale) costs a comparable
#: fraction of one gate load -- interconnect matters, but does not
#: dominate a technology whose gates are this slow.
EGFET_WIRE_RESISTANCE_OHM_M = 1_000.0
EGFET_WIRE_CAPACITANCE_F_M = 1e-7

#: Characteristic gate-input (electrolyte) capacitance, consistent
#: with Table 2 switching energies at VDD = 1 V (E ~ C * VDD^2).
EGFET_INPUT_CAPACITANCE_F = 5e-9


@lru_cache(maxsize=1)
def egfet_library() -> CellLibrary:
    """Return the EGFET standard-cell library at VDD = 1 V.

    The returned library is cached and immutable; callers share one
    instance.
    """
    return CellLibrary(
        name="EGFET",
        vdd=1.0,
        logic_family="transistor-resistor (n-type only)",
        printing_route="fully-additive inkjet",
        cells=build_cells(_EGFET_ROWS),
        mobility=EGFET_MOBILITY_CM2_VS,
        feature_length=EGFET_CHANNEL_LENGTH_M,
        wire_resistance=EGFET_WIRE_RESISTANCE_OHM_M,
        wire_capacitance=EGFET_WIRE_CAPACITANCE_F_M,
        input_capacitance=EGFET_INPUT_CAPACITANCE_F,
        notes=(
            "In2O3 channel, ITO source/drain, solid composite electrolyte "
            "gate isolation, PEDOT:PSS top gate; printed with a Dimatix "
            "DMP-2831 materials printer."
        ),
    )
