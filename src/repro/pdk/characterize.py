"""Cross-validation of library data against the compact model.

The published Table 2 numbers come from measurement-calibrated
characterization.  This module closes the loop in the other direction:
starting from physical device parameters, re-derive per-cell delay and
energy with :mod:`repro.pdk.compact` and compare against the library.

Calibration strategy (mirrors Section 3.1.1 of the paper): device
parameters are fitted so the *inverter* matches its measured rise/fall
delay exactly, then every other cell is predicted from its topology.
Agreement within a small factor validates that the library numbers are
mutually consistent with a transistor-resistor RC picture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pdk.cells import CellLibrary
from repro.pdk.compact import (
    LN2,
    DeviceParams,
    GateEstimate,
    STANDARD_TOPOLOGIES,
    estimate_all,
)

#: Electrolyte gate capacitance per area for EGFET in F/m^2 (~3 uF/cm^2,
#: the high value responsible for sub-1V operation).
EGFET_COX = 3e-2

#: EGFET device geometry from Figure 2 (W = 200 um, L = 40 um).
EGFET_W = 200e-6
EGFET_L = 40e-6

#: CNT-TFT effective parameters (Lei et al. device class).
CNT_COX = 1.8e-3
CNT_W = 40e-6
CNT_L = 4e-6


@dataclass(frozen=True)
class CellComparison:
    """Published-vs-derived values for one cell."""

    name: str
    published_rise: float
    derived_rise: float
    published_fall: float
    derived_fall: float
    published_energy: float
    derived_energy: float

    @property
    def rise_ratio(self) -> float:
        """Derived / published rise delay."""
        return self.derived_rise / self.published_rise

    @property
    def fall_ratio(self) -> float:
        """Derived / published fall delay."""
        return self.derived_fall / self.published_fall

    @property
    def energy_ratio(self) -> float:
        """Derived / published switching energy."""
        return self.derived_energy / self.published_energy


def calibrate_device(
    library: CellLibrary, cox: float, width: float, length: float, vth: float
) -> DeviceParams:
    """Fit device parameters so the inverter matches the library.

    The contact-degradation factor is chosen so the modelled inverter
    fall delay equals the measured one, the pull-up ratio so the rise
    delay matches, and the hold time so the inverter energy matches.

    Args:
        library: The library whose inverter anchors the fit.
        cox: Gate capacitance per area in F/m^2.
        width: Channel width in metres.
        length: Channel length in metres.
        vth: Threshold voltage in volts.

    Returns:
        Calibrated :class:`DeviceParams`.
    """
    inv = library.cell("INVX1")
    vdd = library.vdd
    c_gate = cox * width * length

    # Ideal square-law on-resistance, then degrade to match t_fall.
    ideal_on_current = 0.5 * (library.mobility * 1e-4) * cox * (width / length) * (
        vdd - vth
    ) ** 2
    ideal_r_on = vdd / ideal_on_current
    required_r_on = inv.fall_delay / (LN2 * c_gate)
    degradation = max(1.0, required_r_on / ideal_r_on)

    r_on = ideal_r_on * degradation
    required_r_pullup = inv.rise_delay / (LN2 * c_gate)
    pullup_ratio = required_r_pullup / r_on

    # Hold time from the inverter energy budget.
    dynamic = c_gate * vdd**2
    static_current = 0.5 * vdd / required_r_pullup
    hold_time = max(0.0, (inv.energy - dynamic) / (static_current * vdd))

    return DeviceParams(
        mobility=library.mobility * 1e-4,
        cox=cox,
        width=width,
        length=length,
        vth=vth,
        vdd=vdd,
        contact_degradation=degradation,
        pullup_ratio=pullup_ratio,
        hold_time=hold_time,
    )


def calibrate_egfet(library: CellLibrary) -> DeviceParams:
    """Calibrate the EGFET compact model (Vth = 0.17 V, Section 3.1)."""
    return calibrate_device(library, EGFET_COX, EGFET_W, EGFET_L, vth=0.17)


def calibrate_cnt(library: CellLibrary) -> DeviceParams:
    """Calibrate the CNT-TFT compact model (|Vth| ~ 0.8 V)."""
    return calibrate_device(library, CNT_COX, CNT_W, CNT_L, vth=0.8)


def compare_library(
    library: CellLibrary, params: DeviceParams
) -> dict[str, CellComparison]:
    """Compare every library cell against its compact-model estimate."""
    estimates: dict[str, GateEstimate] = estimate_all(params)
    comparisons = {}
    for name, estimate in estimates.items():
        if name not in library:
            continue
        cell = library.cell(name)
        comparisons[name] = CellComparison(
            name=name,
            published_rise=cell.rise_delay,
            derived_rise=estimate.rise_delay,
            published_fall=cell.fall_delay,
            derived_fall=estimate.fall_delay,
            published_energy=cell.energy,
            derived_energy=estimate.energy,
        )
    return comparisons


def worst_log_error(comparisons: dict[str, CellComparison]) -> float:
    """Largest |log10(derived/published)| over all delays.

    A value of 1.0 means the worst cell is off by 10x; the libraries
    and the RC picture agree well under that.
    """
    worst = 0.0
    for comparison in comparisons.values():
        for ratio in (comparison.rise_ratio, comparison.fall_ratio):
            worst = max(worst, abs(math.log10(ratio)))
    return worst


__all__ = [
    "CellComparison",
    "calibrate_device",
    "calibrate_egfet",
    "calibrate_cnt",
    "compare_library",
    "worst_log_error",
    "STANDARD_TOPOLOGIES",
]
