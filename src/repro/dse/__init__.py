"""Design-space exploration over TP-ISA core parameters (Section 5.2)."""

from repro.dse.sweep import DesignPoint, sweep_design_space
from repro.dse.pareto import pareto_front

__all__ = ["DesignPoint", "sweep_design_space", "pareto_front"]
