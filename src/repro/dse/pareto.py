"""Pareto-frontier utilities for design-space results.

The paper's guidance ("the best cores are single-stage") falls out of
which configurations survive on the area/power/performance frontier.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when cost vector ``a`` is no worse everywhere and better
    somewhere (minimization)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(
    items: Sequence[T], costs: Callable[[T], Sequence[float]]
) -> list[T]:
    """The non-dominated subset of ``items`` under ``costs``."""
    front = []
    vectors = [tuple(costs(item)) for item in items]
    for index, item in enumerate(items):
        if not any(
            dominates(other, vectors[index])
            for j, other in enumerate(vectors)
            if j != index
        ):
            front.append(item)
    return front
