"""The Figure 7 sweep: datawidth x pipeline depth x BAR count.

Each of the 24 configurations is elaborated to a netlist and measured
(area with its combinational/register split, fmax, power at fmax) in
either printed technology.

Technology names normalize at this API boundary (``"CNT-TFT"`` is an
accepted alias of canonical ``"CNT"``), so the evaluation cache never
splits on spelling and :attr:`DesignPoint.technology` always holds the
canonical name.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro import obs
from repro.coregen.config import CoreConfig, standard_sweep
from repro.coregen.generator import generate_core
from repro.netlist.power import power_report
from repro.netlist.sta import timing_report
from repro.netlist.stats import area_report
from repro.pdk import canonical_technology, technology_library

_EVALUATIONS = obs.counter("dse.evaluations")
_CACHE_HITS = obs.counter("dse.evaluate_cache_hits")


@dataclass(frozen=True)
class DesignPoint:
    """One measured sweep configuration (Figure 7 bar group)."""

    config: CoreConfig
    technology: str
    fmax: float
    area: float
    combinational_area: float
    sequential_area: float
    power_at_fmax: float
    combinational_power: float
    sequential_power: float
    gate_count: int
    dff_count: int

    @property
    def name(self) -> str:
        return self.config.name


def evaluate_design(config: CoreConfig, technology: str = "EGFET") -> DesignPoint:
    """Elaborate and measure one configuration (memoized).

    ``technology`` accepts canonical names and aliases; results are
    cached per (config, canonical technology), so
    ``evaluate_design(c, "CNT")`` and ``evaluate_design(c, "CNT-TFT")``
    share one entry.
    """
    technology = canonical_technology(technology)
    if obs.STATE.enabled:
        misses_before = _evaluate_design.cache_info().misses
        point = _evaluate_design(config, technology)
        if _evaluate_design.cache_info().misses == misses_before:
            _CACHE_HITS.inc()
        return point
    return _evaluate_design(config, technology)


@lru_cache(maxsize=256)
def _evaluate_design(config: CoreConfig, technology: str) -> DesignPoint:
    with obs.span("evaluate_design", design=config.name, technology=technology) as sp:
        _EVALUATIONS.inc()
        library = technology_library(technology)
        netlist = generate_core(config)
        area = area_report(netlist, library)
        power = power_report(netlist, library)
        timing = timing_report(netlist, library)
        sp.note(fmax=timing.fmax, gates=area.gate_count)
        return DesignPoint(
            config=config,
            technology=technology,
            fmax=timing.fmax,
            area=area.total,
            combinational_area=area.combinational,
            sequential_area=area.sequential,
            power_at_fmax=power.power_at(timing.fmax),
            combinational_power=power.combinational_energy * timing.fmax,
            sequential_power=power.sequential_energy * timing.fmax,
            gate_count=area.gate_count,
            dff_count=area.dff_count,
        )


def _sweep_point(task: tuple[CoreConfig, str]) -> DesignPoint:
    """Worker entry for one sweep point (module-level for pickling)."""
    config, technology = task
    return evaluate_design(config, technology)


def sweep_design_space(
    technology: str = "EGFET", jobs: int | None = None
) -> list[DesignPoint]:
    """Measure all 24 Figure 7 configurations.

    ``jobs`` fans the configurations out across worker processes via
    :func:`repro.exec.parallel_map`; results come back in sweep order
    and are bit-exact against the serial run.
    """
    from repro.exec import parallel_map

    technology = canonical_technology(technology)
    with obs.span("sweep", technology=technology):
        tasks = [(config, technology) for config in standard_sweep()]
        return parallel_map(
            _sweep_point, tasks, jobs=jobs, label=f"sweep[{technology}]"
        )


def sweep_design_spaces(
    technologies: tuple[str, ...] = ("EGFET", "CNT"),
    jobs: int | None = None,
) -> dict[str, list[DesignPoint]]:
    """Sweep several technologies through one shared worker pool.

    Fans all configurations x technologies out together, so a
    multi-technology sweep keeps every worker busy instead of
    draining the pool between technologies.  Returns canonical
    technology name -> sweep-order points.
    """
    from repro.exec import parallel_map

    canon = [canonical_technology(t) for t in technologies]
    with obs.span("sweep_all", technologies=",".join(canon)):
        tasks = [
            (config, technology)
            for technology in canon
            for config in standard_sweep()
        ]
        points = parallel_map(_sweep_point, tasks, jobs=jobs, label="sweep_all")
    count = len(points) // len(canon) if canon else 0
    return {
        technology: points[index * count : (index + 1) * count]
        for index, technology in enumerate(canon)
    }
