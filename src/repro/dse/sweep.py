"""The Figure 7 sweep: datawidth x pipeline depth x BAR count.

Each of the 24 configurations is elaborated to a netlist and measured
(area with its combinational/register split, fmax, power at fmax) in
either printed technology.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.coregen.config import CoreConfig, standard_sweep
from repro.coregen.generator import generate_core
from repro.errors import ConfigError
from repro.netlist.power import power_report
from repro.netlist.sta import timing_report
from repro.netlist.stats import area_report
from repro.pdk import cnt_tft_library, egfet_library


@dataclass(frozen=True)
class DesignPoint:
    """One measured sweep configuration (Figure 7 bar group)."""

    config: CoreConfig
    technology: str
    fmax: float
    area: float
    combinational_area: float
    sequential_area: float
    power_at_fmax: float
    combinational_power: float
    sequential_power: float
    gate_count: int
    dff_count: int

    @property
    def name(self) -> str:
        return self.config.name


def _library(technology: str):
    if technology == "EGFET":
        return egfet_library()
    if technology in ("CNT", "CNT-TFT"):
        return cnt_tft_library()
    raise ConfigError(f"unknown technology {technology!r}")


@lru_cache(maxsize=64)
def evaluate_design(config: CoreConfig, technology: str = "EGFET") -> DesignPoint:
    """Elaborate and measure one configuration."""
    library = _library(technology)
    netlist = generate_core(config)
    area = area_report(netlist, library)
    power = power_report(netlist, library)
    timing = timing_report(netlist, library)
    return DesignPoint(
        config=config,
        technology=technology,
        fmax=timing.fmax,
        area=area.total,
        combinational_area=area.combinational,
        sequential_area=area.sequential,
        power_at_fmax=power.power_at(timing.fmax),
        combinational_power=power.combinational_energy * timing.fmax,
        sequential_power=power.sequential_energy * timing.fmax,
        gate_count=area.gate_count,
        dff_count=area.dff_count,
    )


def sweep_design_space(technology: str = "EGFET") -> list[DesignPoint]:
    """Measure all 24 Figure 7 configurations."""
    return [evaluate_design(config, technology) for config in standard_sweep()]
