"""Content-addressed on-disk artifact cache for compiled pipeline stages.

Every fresh process used to pay netlist elaboration and simulation
codegen again, even for a configuration it had built a thousand times
before -- the memos in :mod:`repro.coregen.generator` and
:mod:`repro.netlist.compile` live only in memory.  This module gives
those stages a persistent home: artifacts are stored content-addressed
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``), so parallel
workers and subsequent runs skip ``generate_core`` / ``compile``
entirely.

Layout and invariants:

* **Content addressing** -- an artifact's filename is the SHA-256 of
  its full key.  Keys always include :data:`CACHE_VERSION` plus a
  digest of the producing modules' source (:func:`source_digest`), so
  editing the generator or the compiler invalidates its artifacts
  automatically -- no stale-cache wrong answers, no manual flushing.
* **Versioned root** -- artifacts live under ``<root>/v<N>/<kind>/``;
  bumping :data:`CACHE_VERSION` orphans every old entry at once.
* **Atomic writes** -- payloads are written to a temporary file in the
  destination directory and ``os.replace``d into place, so concurrent
  writers race benignly (last complete write wins, readers never see a
  torn file).
* **Corruption recovery** -- an unreadable or unpicklable entry is
  deleted and reported as a miss; the caller simply recomputes.
* **Best effort** -- any filesystem error degrades to cache-off
  behaviour rather than failing the computation.

Telemetry: ``exec.cache_hits`` / ``exec.cache_misses`` /
``exec.cache_writes`` / ``exec.cache_corrupt`` count disk-cache
traffic and surface in ``obs.snapshot()`` and ``RUN_REPORT.json``.
Disable the cache entirely with ``REPRO_CACHE=0``.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path

from repro.obs.metrics import counter as _obs_counter

#: Bump to orphan every existing artifact (layout/payload changes).
CACHE_VERSION = 1

_HITS = _obs_counter("exec.cache_hits")
_MISSES = _obs_counter("exec.cache_misses")
_WRITES = _obs_counter("exec.cache_writes")
_CORRUPT = _obs_counter("exec.cache_corrupt")
_ERRORS = _obs_counter("exec.cache_errors")


def cache_enabled() -> bool:
    """Whether the on-disk artifact cache is active (``REPRO_CACHE``).

    Enabled by default; set ``REPRO_CACHE=0`` (or empty) to force every
    stage to recompute.  Read per call so tests can flip it.
    """
    return os.environ.get("REPRO_CACHE", "1") not in ("", "0")


def cache_root() -> Path:
    """Versioned cache directory (not created until first write).

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro`` or
    ``~/.cache/repro``.  The :data:`CACHE_VERSION` subdirectory keeps
    incompatible generations side by side.
    """
    base = os.environ.get("REPRO_CACHE_DIR")
    if base:
        root = Path(base)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        root = (Path(xdg) if xdg else Path.home() / ".cache") / "repro"
    return root / f"v{CACHE_VERSION}"


@lru_cache(maxsize=None)
def source_digest(*module_names: str) -> str:
    """Digest of the named modules' source files (cache-key component).

    Keying artifacts on the *code that produced them* makes
    invalidation automatic: editing ``repro.coregen.generator``
    changes the digest and orphans every netlist it ever elaborated.
    Modules whose source cannot be read contribute their version-less
    name only (frozen/zipapp deployments fall back to
    :data:`CACHE_VERSION` bumps).
    """
    digest = hashlib.sha256()
    for name in module_names:
        digest.update(name.encode())
        module = importlib.import_module(name)
        source = getattr(module, "__file__", None)
        if source:
            try:
                digest.update(Path(source).read_bytes())
            except OSError:
                pass
    return digest.hexdigest()[:20]


def structural_hash(netlist) -> str:
    """Content hash of a netlist's structure (ports + connectivity).

    Two netlists with the same hash compile to identical simulation
    code: the hash covers net count, the reset net, every port bus,
    and every instance's (cell, input nets, output net) -- but not the
    design *name*, so structurally identical designs share artifacts.
    Memoized on the netlist object (the structure is immutable once
    elaborated).
    """
    cached = getattr(netlist, "_structural_hash", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(f"{netlist.net_count};{netlist.reset_n};".encode())
    for name in sorted(netlist.inputs):
        digest.update(f"i:{name}:{tuple(netlist.inputs[name].nets)};".encode())
    for name in sorted(netlist.outputs):
        digest.update(f"o:{name}:{tuple(netlist.outputs[name].nets)};".encode())
    digest.update(
        ";".join(
            f"{inst.cell}:{inst.inputs}:{inst.output}"
            for inst in netlist.instances
        ).encode()
    )
    value = digest.hexdigest()
    netlist._structural_hash = value
    return value


def artifact_path(kind: str, key: str) -> Path:
    """Content address for one artifact: ``<root>/<kind>/<sha256>.pkl``."""
    digest = hashlib.sha256(key.encode()).hexdigest()
    return cache_root() / kind / f"{digest}.pkl"


def load_artifact(kind: str, key: str):
    """Fetch one artifact, or ``None`` on miss/corruption/disabled.

    A corrupt entry (unreadable pickle) is deleted so the follow-up
    :func:`store_artifact` replaces it with a good one.
    """
    if not cache_enabled():
        return None
    path = artifact_path(kind, key)
    try:
        payload = path.read_bytes()
    except OSError:
        _MISSES.inc()
        return None
    try:
        artifact = pickle.loads(payload)
    except Exception:
        _CORRUPT.inc()
        _MISSES.inc()
        try:
            path.unlink()
        except OSError:
            pass
        return None
    _HITS.inc()
    return artifact


def store_artifact(kind: str, key: str, artifact) -> bool:
    """Persist one artifact atomically; False when disabled or failed.

    The payload is pickled to a temporary file in the destination
    directory and renamed into place, so a concurrent reader sees
    either the previous complete entry or this one -- never a torn
    write -- and concurrent writers of the same key are idempotent.
    """
    if not cache_enabled():
        return False
    path = artifact_path(kind, key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=path.name + ".", delete=False
        )
        try:
            with handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
    except (OSError, pickle.PicklingError):
        _ERRORS.inc()
        return False
    _WRITES.inc()
    return True
