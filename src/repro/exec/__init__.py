"""Work distribution tier: process-parallel execution + artifact cache.

``repro.exec`` is the subsystem that makes the evaluation pipeline
scale with available cores and never rebuild an artifact twice:

* :func:`parallel_map` -- chunked process-pool fan-out with
  deterministic (submission-order) reassembly and worker-to-parent
  observability shipping (:mod:`repro.exec.engine`);
* :func:`resolve_jobs` / :func:`set_default_jobs` -- worker-count
  policy shared by every ``jobs=`` API, ``python -m repro --jobs N``,
  and ``REPRO_JOBS``;
* the content-addressed on-disk artifact cache
  (:mod:`repro.exec.cache`) under ``$REPRO_CACHE_DIR`` (default
  ``~/.cache/repro``) that lets warm process starts skip
  ``generate_core`` and simulation codegen entirely;
* :func:`clear_caches` -- drop the *in-memory* evaluation memos
  (benchmark/test helper; the disk cache is unaffected).

See ``docs/PARALLELISM.md`` for the full model: determinism
guarantees, cache keying/invalidation, and how worker metrics merge
into ``RUN_REPORT.json``.
"""

from __future__ import annotations

from repro.exec.cache import (
    CACHE_VERSION,
    cache_enabled,
    cache_root,
    load_artifact,
    source_digest,
    store_artifact,
    structural_hash,
)
from repro.exec.engine import (
    map_in_chunks,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
)

__all__ = [
    "CACHE_VERSION",
    "cache_enabled",
    "cache_root",
    "clear_caches",
    "load_artifact",
    "map_in_chunks",
    "parallel_map",
    "resolve_jobs",
    "set_default_jobs",
    "source_digest",
    "store_artifact",
    "structural_hash",
]


def clear_caches() -> None:
    """Clear the in-memory evaluation memos (not the on-disk cache).

    Resets the elaboration memo (``generate_core``), the sweep
    evaluation cache (``dse.sweep``), and the system report cache
    (``eval.system``) so benchmarks can measure cold-start costs and
    tests can isolate cache behaviour.  Imports lazily: the memos live
    in heavier modules this package must not pull in at import time.
    """
    from repro.coregen.generator import _generate_core
    from repro.dse.sweep import _evaluate_design
    from repro.eval.system import _core_reports

    _generate_core.cache_clear()
    _evaluate_design.cache_clear()
    _core_reports.cache_clear()
