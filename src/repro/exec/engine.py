"""Process-pool execution engine for the pipeline's fan-out layers.

The paper's headline results are all embarrassingly parallel -- the
Figure 7 sweep is 24 independent (config, technology) evaluations, the
Section 8 grid is ~76 independent system evaluations, and fault
campaigns parallelize across fault sites -- so this module provides
one primitive, :func:`parallel_map`, that every fan-out layer shares:

* **stdlib only** -- ``concurrent.futures.ProcessPoolExecutor`` over
  the ``fork`` start method where available (workers inherit warm
  in-memory memos for free), ``spawn`` otherwise;
* **chunked scheduling** -- items are grouped into chunks sized for
  ~2 waves per worker, amortizing task pickling and per-chunk obs
  shipping without starving the pool on skewed item costs;
* **warm workers** -- callers may pass a ``warm=`` initializer that
  runs once per worker before its first chunk (e.g. pre-building a
  campaign context and loading compiled kernels from the persistent
  artifact cache), so per-worker setup cost is paid off the
  critical path of the first dispatched chunk;
* **deterministic reassembly** -- results come back in *submission*
  order regardless of completion order, so a parallel run is
  bit-exact against the serial run by construction;
* **observability shipping** -- when the obs switch is on, each worker
  records spans/metrics locally and ships them back with its chunk;
  the parent re-roots the spans under its live span and folds the
  metrics into the process registry, keeping ``RUN_REPORT.json`` and
  ``--profile`` truthful for parallel runs;
* **per-worker telemetry** -- each chunk additionally ships its
  compute time, queue-wait time, and worker pid; the parent folds them
  into ``exec.worker.chunk_compute_s`` / ``exec.worker.chunk_wait_s``
  histograms and, once the pool drains, derives fan-out health gauges:
  ``exec.worker.utilization`` (summed busy time over ``workers x pool
  wall``) and ``exec.worker.straggler_ratio`` (busiest worker over the
  mean -- 1.0 is a perfectly balanced pool), so the history ledger and
  dashboard can trend scheduling quality across runs.

Worker count resolution (:func:`resolve_jobs`): an explicit ``jobs=``
argument wins, then :func:`set_default_jobs` (the CLI's ``--jobs N``),
then the ``REPRO_JOBS`` environment variable, then 1 (serial).  Inside
a worker process everything resolves to 1 so nested fan-out layers
(e.g. a sweep whose evaluation runs a fault campaign) never spawn
grandchildren.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigError
from repro.obs.metrics import (
    REGISTRY,
    counter as _obs_counter,
    gauge as _obs_gauge,
    histogram as _obs_histogram,
)
from repro.obs import live as _live
from repro.obs.progress import progress, set_progress_sink
from repro.obs.runtime import STATE
from repro.obs.trace import TRACER, current_trace_id, set_trace_id, span

_PARALLEL_RUNS = _obs_counter("exec.parallel_runs")
_TASKS = _obs_counter("exec.tasks_executed")
_CHUNKS = _obs_counter("exec.chunks_dispatched")
_JOBS_GAUGE = _obs_gauge("exec.jobs")
_CHUNK_COMPUTE = _obs_histogram("exec.worker.chunk_compute_s")
_CHUNK_WAIT = _obs_histogram("exec.worker.chunk_wait_s")
_UTILIZATION = _obs_gauge("exec.worker.utilization")
_STRAGGLER = _obs_gauge("exec.worker.straggler_ratio")

#: Target dispatch waves per worker when auto-sizing chunks.  Two
#: waves balance pickling/obs-shipping overhead (fewer, larger chunks)
#: against tail latency on skewed item costs (more, smaller chunks).
_WAVES_PER_WORKER = 2

# Session-wide default set by the CLI's --jobs flag (None = unset).
_DEFAULT_JOBS: int | None = None

# True inside pool workers: nested parallel_map calls degrade to serial.
_IN_WORKER = False


def set_default_jobs(jobs: int | None) -> None:
    """Set the session-wide default worker count (``--jobs N``).

    ``None`` clears the override, falling back to ``REPRO_JOBS`` / 1.
    """
    global _DEFAULT_JOBS
    if jobs is not None and int(jobs) < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    _DEFAULT_JOBS = None if jobs is None else int(jobs)


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit > default > ``REPRO_JOBS`` > 1.

    Always 1 inside a pool worker (no nested process pools).
    """
    if _IN_WORKER:
        return 1
    if jobs is not None:
        if int(jobs) < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        return int(jobs)
    if _DEFAULT_JOBS is not None:
        return _DEFAULT_JOBS
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigError(f"REPRO_JOBS must be an integer, got {env!r}")
        if value >= 1:
            return value
    return 1


def _mp_context():
    """``fork`` when the platform offers it (warm memo inheritance)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _worker_init(obs_enabled: bool, warm: Callable | None = None) -> None:
    """Pool initializer: mark worker context, start obs from a clean slate.

    ``warm`` (when given) runs after the obs reset so any setup work it
    does -- elaborating a netlist, pulling compiled kernels from the
    persistent artifact cache -- is accounted to the worker, not to the
    first chunk's results.  Warm-up failures are deliberately
    swallowed: the real chunk will hit the same error in a context
    that can report it per-item.
    """
    global _IN_WORKER
    _IN_WORKER = True
    STATE.enabled = obs_enabled
    TRACER.clear()
    REGISTRY.reset()
    # Fork-inherited serve state must not leak into workers: a copied
    # live bus would publish into dead subscriber queues, a copied
    # progress sink would call into the parent's job table, and a
    # copied thread trace-id would stamp unrelated chunks.
    _live.deactivate()
    set_progress_sink(None)
    set_trace_id(None)
    if warm is not None:
        try:
            warm()
        except Exception:
            pass


def _run_chunk(
    fn: Callable,
    chunk: list,
    submitted_at: float,
    trace_id: str | None = None,
) -> tuple:
    """Worker: apply ``fn`` to one chunk, bundling obs data as a delta.

    The tracer/registry are cleared after export so a worker that
    serves several chunks ships disjoint deltas (no double counting).

    ``submitted_at`` is the parent's ``perf_counter`` at submission;
    ``perf_counter`` reads the system-wide monotonic clock on the
    platforms we run on, so ``start - submitted_at`` is the chunk's
    queue wait (clamped at 0 in case a platform's clock is per
    process).  Compute and wait ship back as the last tuple element so
    the parent can attribute busy time per worker pid.

    ``trace_id`` is the *submitting thread's* trace id, forwarded so
    every span this chunk records carries the job's id across the
    process boundary (see :func:`repro.obs.trace.set_trace_id`).
    """
    set_trace_id(trace_id)
    start = time.perf_counter()
    wait_s = max(0.0, start - submitted_at)
    results = [fn(item) for item in chunk]
    compute_s = time.perf_counter() - start
    if STATE.enabled:
        spans = TRACER.events()
        metrics = REGISTRY.export_state()
        TRACER.clear()
        REGISTRY.reset()
    else:
        spans, metrics = [], {}
    return results, spans, metrics, (os.getpid(), compute_s, wait_s)


def _absorb_worker_obs(spans: list, metrics: dict) -> None:
    """Fold one worker delta into the parent collector/registry.

    Worker spans are re-rooted under the parent's live span path so a
    run report's depth-0 "stages" section is not polluted by worker
    internals.
    """
    if spans:
        prefix, offset = TRACER.current_path()
        if prefix:
            for event in spans:
                event.depth += offset
                event.path = f"{prefix}/{event.path}"
        TRACER.absorb(spans)
    if metrics:
        REGISTRY.merge_state(metrics)


def parallel_map(
    fn: Callable,
    items: Iterable,
    jobs: int | None = None,
    chunk_size: int | None = None,
    label: str = "parallel_map",
    warm: Callable | None = None,
) -> list:
    """Apply ``fn`` to every item, fanning out across worker processes.

    Results are returned in input order and are bit-exact against
    ``[fn(item) for item in items]`` -- parallelism never reorders or
    perturbs them.  With ``jobs`` resolving to 1 (the default) no pool
    is created and the map runs inline, so call sites need no serial
    special case.

    Args:
        fn: A picklable (module-level) callable of one item.  Worker
            exceptions propagate to the caller; wrap per-item recovery
            inside ``fn`` when a failed item should not abort the run.
        items: The work list (materialized once; order defines output
            order).
        jobs: Worker processes; ``None`` defers to
            :func:`resolve_jobs`.
        chunk_size: Items per dispatched task; ``None`` auto-sizes to
            ~2 waves per worker.
        label: Span/progress name for observability.
        warm: Optional zero-argument callable run once per worker at
            startup (must be picklable under ``spawn``; a
            module-level :func:`functools.partial` works everywhere).
            Ignored for serial runs -- inline execution shares the
            caller's already-warm memos.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [
            fn(item)
            for item in progress(items, label, every=max(8, len(items) // 4))
        ]
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (jobs * _WAVES_PER_WORKER)))
    chunks = [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]
    workers = min(jobs, len(chunks))
    with span(label, jobs=workers, tasks=len(items), chunks=len(chunks)):
        if STATE.enabled:
            _PARALLEL_RUNS.value += 1
            _TASKS.value += len(items)
            _CHUNKS.value += len(chunks)
            _JOBS_GAUGE.value = workers
        results: list = []
        busy_by_pid: dict[int, float] = {}
        pool_start = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=_worker_init,
            initargs=(STATE.enabled, warm),
        ) as pool:
            futures = [
                pool.submit(
                    _run_chunk,
                    fn,
                    chunk,
                    time.perf_counter(),
                    current_trace_id(),
                )
                for chunk in chunks
            ]
            # Submission order, not completion order: determinism.
            for future in progress(
                futures, label, every=max(1, len(futures) // 8)
            ):
                chunk_results, spans, metrics, timing = future.result()
                results.extend(chunk_results)
                _absorb_worker_obs(spans, metrics)
                if STATE.enabled:
                    pid, compute_s, wait_s = timing
                    busy_by_pid[pid] = busy_by_pid.get(pid, 0.0) + compute_s
                    _CHUNK_COMPUTE.observe(compute_s)
                    _CHUNK_WAIT.observe(wait_s)
        if STATE.enabled and busy_by_pid:
            pool_wall = time.perf_counter() - pool_start
            total_busy = sum(busy_by_pid.values())
            if pool_wall > 0:
                _UTILIZATION.value = round(
                    total_busy / (workers * pool_wall), 4
                )
            mean_busy = total_busy / len(busy_by_pid)
            if mean_busy > 0:
                _STRAGGLER.value = round(
                    max(busy_by_pid.values()) / mean_busy, 4
                )
    return results


def map_in_chunks(
    fn: Callable, items: Sequence, chunk_size: int, **kwargs
) -> list:
    """:func:`parallel_map` over explicit chunks, flattened back out.

    Convenience for callers whose worker function consumes a *batch*
    (e.g. one bit-parallel fault batch) but whose results are
    per-item: ``fn`` receives a list slice and must return a list of
    the same length.
    """
    batches = [
        list(items[start : start + chunk_size])
        for start in range(0, len(items), chunk_size)
    ]
    grouped = parallel_map(fn, batches, chunk_size=1, **kwargs)
    return [result for group in grouped for result in group]
