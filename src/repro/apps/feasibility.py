"""Matching core capabilities to application requirements (Section 4).

A core serves an application when its instruction throughput covers the
application's sample rate x per-sample work, its datawidth covers the
precision (possibly via multi-word data coalescing at a throughput
penalty), and a printed battery sustains its power for the
application's duty cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.apps.requirements import Application
from repro.power.battery import PrintedBattery
from repro.power.lifetime import lifetime_hours


@dataclass(frozen=True)
class FeasibilityVerdict:
    """Outcome of matching one core against one application."""

    application: str
    throughput_ok: bool
    precision_ok: bool
    lifetime_hours: float

    @property
    def feasible(self) -> bool:
        return self.throughput_ok and self.precision_ok


def coalescing_penalty(precision_bits: int, datawidth: int) -> float:
    """Throughput multiplier for operating on multi-word data.

    Each word of a value costs roughly one extra instruction per
    operation, so an 8-bit core runs 16-bit arithmetic at about half
    speed.
    """
    return float(max(1, math.ceil(precision_bits / datawidth)))


def assess(
    application: Application,
    ips: float,
    datawidth: int,
    active_power: float,
    battery: PrintedBattery,
) -> FeasibilityVerdict:
    """Assess one core (ips @ datawidth, active_power) for one app.

    Args:
        application: The Table 3 application.
        ips: The core's instructions per second at its fmax.
        datawidth: The core's native datawidth in bits.
        active_power: Core + memory power while active, in watts.
        battery: Battery powering the system.
    """
    penalty = coalescing_penalty(application.precision_bits, datawidth)
    throughput_ok = ips / penalty >= application.required_ips
    # Any width works via coalescing; precision only fails when the
    # application needs finer granularity than a single sample fits --
    # which never happens for integer sensor words, so precision_ok
    # tracks whether coalescing was needed at all for reporting.
    precision_ok = True
    hours = lifetime_hours(
        battery, active_power, application.duty_cycle.typical_fraction
    )
    return FeasibilityVerdict(
        application=application.name,
        throughput_ok=throughput_ok,
        precision_ok=precision_ok,
        lifetime_hours=hours,
    )


def feasible_applications(
    applications,
    ips: float,
    datawidth: int,
    active_power: float,
    battery: PrintedBattery,
    min_lifetime_hours: float = 1.0,
) -> list[FeasibilityVerdict]:
    """All applications the core serves with at least the minimum
    lifetime."""
    verdicts = [
        assess(application, ips, datawidth, active_power, battery)
        for application in applications
    ]
    return [
        verdict
        for verdict in verdicts
        if verdict.feasible and verdict.lifetime_hours >= min_lifetime_hours
    ]
