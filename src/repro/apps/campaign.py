"""``python -m repro campaign``: fault campaigns from the command line.

Runs a stuck-at fault-injection campaign for one benchmark on one
core configuration, on any of the four simulation backends::

    python -m repro campaign --program mult --width 8 --backend numpy
    python -m repro campaign --backend batched --stride 4 --jobs 2
    python -m repro campaign --config p1_8_2 --backend compiled --max-faults 20

and ``python -m repro campaign --verify-suite`` lane-packs every
native-width benchmark through the selected lane backend and diffs
each lane against the instruction-set simulator (the
:func:`repro.eval.suite.verify_suite` hook).

See ``docs/MODELS.md`` ("Simulation backends") for how to pick a
backend and ``docs/TESTING.md`` for campaign semantics.
"""

from __future__ import annotations

import sys
import time

#: Backends accepted by --backend (campaign mode).
CAMPAIGN_BACKENDS = ("numpy", "batched", "compiled", "interpreted")

#: Lane backends accepted by --backend in --verify-suite mode.
LANE_ONLY = ("numpy", "batched")


def _usage() -> str:
    return (
        "usage: python -m repro campaign [--program NAME] [--width N]\n"
        "           [--config NAME] [--backend numpy|batched|compiled|interpreted]\n"
        "           [--stride N] [--max-faults N] [--lanes N] [--jobs N]\n"
        "       python -m repro campaign --verify-suite [--backend numpy|batched]"
    )


def campaign_main(argv: list[str]) -> int:
    """Entry point for the ``campaign`` subcommand."""
    program_name = "mult"
    width = 8
    config_name: str | None = None
    backend = "numpy"
    stride = 8
    max_faults: int | None = None
    lanes: int | None = None
    jobs: int | None = None
    verify_suite_mode = False

    i = 0
    while i < len(argv):
        arg = argv[i]

        def value(cast=str):
            if i + 1 >= len(argv):
                raise ValueError(f"{arg} needs an argument")
            return cast(argv[i + 1])

        try:
            if arg == "--program":
                program_name = value()
                i += 1
            elif arg == "--width":
                width = value(int)
                i += 1
            elif arg == "--config":
                config_name = value()
                i += 1
            elif arg == "--backend":
                backend = value()
                i += 1
            elif arg == "--stride":
                stride = value(int)
                i += 1
            elif arg == "--max-faults":
                max_faults = value(int)
                i += 1
            elif arg == "--lanes":
                lanes = value(int)
                i += 1
            elif arg == "--jobs":
                jobs = value(int)
                i += 1
            elif arg == "--verify-suite":
                verify_suite_mode = True
            elif arg in ("-h", "--help"):
                print(_usage())
                return 0
            else:
                print(f"unknown option {arg}", file=sys.stderr)
                print(_usage(), file=sys.stderr)
                return 2
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        i += 1

    if verify_suite_mode:
        from repro.eval.suite import verify_suite
        from repro.errors import SimulationError

        if backend not in LANE_ONLY:
            print(
                f"--verify-suite needs a lane backend ({'|'.join(LANE_ONLY)}), "
                f"got {backend!r}",
                file=sys.stderr,
            )
            return 2
        started = time.perf_counter()
        try:
            verified = verify_suite(backend)
        except SimulationError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        total = sum(verified.values())
        for name, count in verified.items():
            print(f"  {name}: {count} benchmarks agree with the ISS")
        print(
            f"verify-suite[{backend}]: {total} native benchmarks verified "
            f"in {elapsed:.2f}s"
        )
        return 0

    if backend not in CAMPAIGN_BACKENDS:
        print(
            f"unknown backend {backend!r} "
            f"(choose from {'|'.join(CAMPAIGN_BACKENDS)})",
            file=sys.stderr,
        )
        return 2
    from repro.coregen.config import CoreConfig, config_from_name
    from repro.coregen.fault_test import run_fault_campaign
    from repro.programs import build_benchmark

    config = config_from_name(config_name) if config_name else None
    core_width = config.datawidth if config else width
    program = build_benchmark(program_name, width, core_width)
    started = time.perf_counter()
    result = run_fault_campaign(
        program,
        config=config,
        stride=stride,
        max_faults=max_faults,
        backend=backend,
        lanes=lanes,
        jobs=jobs,
    )
    elapsed = time.perf_counter() - started
    design = config.name if config else CoreConfig(
        datawidth=program.datawidth,
        pipeline_stages=1,
        num_bars=max(2, program.num_bars),
    ).name
    rate = result.total / elapsed if elapsed > 0 else float("inf")
    print(
        f"campaign[{program.name} @ {design}, {backend}]: "
        f"{result.detected}/{result.total} faults detected "
        f"({100.0 * result.coverage:.1f}% coverage) "
        f"in {elapsed:.2f}s ({rate:.0f} faults/s)"
    )
    # One compact ledger record per campaign so faults/sec trends
    # across runs (no-op under REPRO_HISTORY=0).
    from repro.obs import history

    history.append_record(
        history.build_record(
            "campaign",
            ["campaign", program.name, design, backend],
            {
                "campaign.seconds": round(elapsed, 3),
                "campaign.faults_per_s": round(rate, 1)
                if elapsed > 0
                else 0.0,
                "campaign.coverage": round(result.coverage, 4),
                "campaign.faults": result.total,
            },
        )
    )
    if result.undetected_sites:
        shown = ", ".join(
            f"i{fault.instance_index}@{fault.stuck_value}"
            for fault in result.undetected_sites[:8]
        )
        more = len(result.undetected_sites) - 8
        if more > 0:
            shown += f", ... {more} more"
        print(f"  undetected: {shown}")
    return 0
