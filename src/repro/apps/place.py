"""``python -m repro place``: printed-fabric placement + wire-aware PPA.

Places one or more named core configurations onto a printed fabric,
derives per-net wire RC from the placed wirelengths, and reports the
wire-blind vs wire-aware timing/energy numbers side by side::

    python -m repro place p1_8_2 --fabric small --seed 0
    python -m repro place p1_8_2 p2_8_2 p1_16_2 --fabric medium --jobs 2
    python -m repro place p3_16_4 --fabric auto --technology CNT

Each placed design gets a self-contained ``layout_<design>.html``
layout/heatmap page (just ``layout.html`` for a single design) plus a
fit report on stdout; a design that overflows its fabric exits 1 with
per-kind overflow diagnostics.  Placement is deterministic given
``--seed`` and bit-identical for any ``--jobs`` (configs fan out via
:func:`repro.exec.parallel_map`; each placement is single-process).
``--report PATH`` writes a full run report, and every placement
appends one compact ``place`` record to the history ledger so
placement quality trends -- and regresses loudly -- across runs.
"""

from __future__ import annotations

import sys
import time
from functools import partial


def _usage() -> str:
    return (
        "usage: python -m repro place CONFIG [CONFIG...]\n"
        "           [--fabric small|medium|large|auto] [--technology EGFET|CNT]\n"
        "           [--seed S] [--sweeps N] [--jobs N] [--out DIR]\n"
        "           [--report PATH]"
    )


def _place_one(
    fabric_name: str,
    technology: str,
    seed: int,
    sweeps: int,
    config_name: str,
) -> dict:
    """Place one named config; returns a JSON-ready result dict.

    Module-level so :func:`repro.exec.parallel_map` can pickle it;
    overflow comes back as a ``{"error": ...}`` dict rather than an
    exception so one overflowing config does not abort its siblings.
    """
    from repro.coregen.config import config_from_name
    from repro.coregen.generator import generate_core
    from repro.errors import PlacementError
    from repro.pdk import technology_library
    from repro.place import (
        fabric_for,
        fit_report,
        named_fabric,
        place,
        render_layout,
        wire_aware_ppa,
    )

    started = time.perf_counter()
    netlist = generate_core(config_from_name(config_name))
    if fabric_name == "auto":
        fabric = fabric_for(netlist, technology=technology)
    else:
        fabric = named_fabric(fabric_name, technology=technology)
    fit = fit_report(netlist, fabric)
    if not fit.fits:
        return {
            "design": netlist.name,
            "fabric": fabric.name,
            "technology": fabric.technology,
            "fit": fit.to_dict(),
            "error": fit.render(),
        }
    placement = place(netlist, fabric, seed=seed, sweeps=sweeps)
    library = technology_library(fabric.technology)
    return {
        "design": netlist.name,
        "fabric": fabric.name,
        "technology": fabric.technology,
        "seed": seed,
        "fit": fit.to_dict(),
        "greedy_hpwl_m": placement.greedy_hpwl,
        "hpwl_m": placement.hpwl,
        "improvement_pct": placement.improvement_pct,
        "anneal_moves": placement.anneal_moves,
        "anneal_accepted": placement.anneal_accepted,
        "ppa": wire_aware_ppa(netlist, placement, library),
        "fit_text": fit.render(),
        "layout_html": render_layout(netlist, placement),
        "wall_s": time.perf_counter() - started,
    }


def place_main(argv: list[str]) -> int:
    """Entry point for the ``place`` subcommand."""
    configs: list[str] = []
    fabric = "medium"
    technology = "EGFET"
    seed = 0
    sweeps: int | None = None
    jobs: int | None = None
    out_dir = "."
    report_path: str | None = None

    i = 0
    while i < len(argv):
        arg = argv[i]

        def value(cast=str):
            if i + 1 >= len(argv):
                raise ValueError(f"{arg} needs an argument")
            return cast(argv[i + 1])

        try:
            if arg == "--fabric":
                fabric = value()
                i += 1
            elif arg == "--technology":
                technology = value()
                i += 1
            elif arg == "--seed":
                seed = value(lambda s: int(s, 0))
                i += 1
            elif arg == "--sweeps":
                sweeps = value(int)
                i += 1
            elif arg == "--jobs":
                jobs = value(int)
                i += 1
            elif arg == "--out":
                out_dir = value()
                i += 1
            elif arg == "--report":
                report_path = value()
                i += 1
            elif arg in ("-h", "--help"):
                print(_usage())
                return 0
            elif arg.startswith("-"):
                print(f"unknown option {arg}", file=sys.stderr)
                print(_usage(), file=sys.stderr)
                return 2
            else:
                configs.append(arg)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        i += 1

    if not configs:
        print("need at least one core configuration", file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2

    from pathlib import Path

    from repro import obs
    from repro.errors import ReproError
    from repro.exec import parallel_map
    from repro.obs import history

    started = time.perf_counter()
    sweeps_value = sweeps if sweeps is not None else 10
    try:
        results = parallel_map(
            partial(_place_one, fabric, technology, seed, sweeps_value),
            configs,
            jobs=jobs,
            label="place",
        )
    except ReproError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    failed = False
    placements: dict[str, dict] = {}
    for result in results:
        if "error" in result:
            failed = True
            print(f"FAIL: {result['error']}", file=sys.stderr)
            continue
        print(result["fit_text"])
        ppa = result["ppa"]
        print(
            f"  hpwl: {result['hpwl_m']:.6g} m "
            f"(greedy {result['greedy_hpwl_m']:.6g} m, "
            f"-{result['improvement_pct']:.1f}%)"
        )
        print(
            "  wire-blind: "
            f"delay {ppa['wire_blind']['critical_path_delay']:.6g} s, "
            f"energy {ppa['wire_blind']['energy_per_cycle']:.6g} J"
        )
        print(
            "  wire-aware: "
            f"delay {ppa['wire_aware']['critical_path_delay']:.6g} s "
            f"(+{ppa['delay_overhead_pct']:.2f}%), "
            f"energy {ppa['wire_aware']['energy_per_cycle']:.6g} J "
            f"(+{ppa['energy_overhead_pct']:.2f}%)"
        )
        suffix = "" if len(configs) == 1 else f"_{result['design']}"
        layout = Path(out_dir) / f"layout{suffix}.html"
        layout.parent.mkdir(parents=True, exist_ok=True)
        layout.write_text(result.pop("layout_html"), encoding="utf-8")
        print(f"  layout: {layout}")
        design = result["design"]
        placements[design] = {
            key: value for key, value in result.items() if key != "fit_text"
        }
        history.append_record(
            history.build_record(
                "place",
                ["place", design, result["technology"], result["fabric"]],
                {
                    f"place.{design}.hpwl_m": round(result["hpwl_m"], 6),
                    f"place.{design}.improvement_pct": round(
                        result["improvement_pct"], 2
                    ),
                    f"place.{design}.wall_s": round(result["wall_s"], 3),
                },
            )
        )

    if report_path:
        wall = time.perf_counter() - started
        run_report = obs.build_run_report(
            ["place"] + list(argv),
            wall,
            extra={"placements": placements},
        )
        obs.write_run_report(report_path, run_report)
        print(f"report: {report_path}")
    return 1 if failed else 0
