"""``python -m repro history`` / ``python -m repro dashboard``.

Command-line surface over the cross-run telemetry ledger
(:mod:`repro.obs.history`) and its HTML dashboard
(:mod:`repro.obs.dashboard`)::

    python -m repro history show                  # recent records
    python -m repro history check                 # regression sentinel
    python -m repro history check --kind bench --window 10
    python -m repro history append --report BENCH_sim.json
    python -m repro dashboard --out dashboard.html

``history check`` gates the *latest* (optionally kind/command
filtered) record against the rolling median/MAD baseline of matching
prior records and exits 1 on a statistical regression, 0 on a pass --
including the cold-start case (no baseline yet), which is reported as
informational.  ``history append`` feeds an existing report JSON into
the ledger, which CI uses to accumulate a cached baseline across runs.
"""

from __future__ import annotations

import json
import sys


def _usage_history() -> str:
    return (
        "usage: python -m repro history show [--ledger PATH] [--limit N]\n"
        "       python -m repro history check [--ledger PATH] [--kind K]\n"
        "           [--command 'CMD ...'] [--window N] [--min-baseline N]\n"
        "           [--mad-k F] [--rel-floor F]\n"
        "       python -m repro history append --report PATH [--ledger PATH]"
    )


def _usage_dashboard() -> str:
    return (
        "usage: python -m repro dashboard [--out PATH] [--ledger PATH] "
        "[--title TEXT]"
    )


def history_main(argv: list[str]) -> int:
    """Entry point for the ``history`` subcommand."""
    from repro.obs import history

    if not argv or argv[0] in ("-h", "--help"):
        print(_usage_history())
        return 0 if argv else 2
    verb, rest = argv[0], argv[1:]
    if verb not in ("show", "check", "append"):
        print(f"unknown history verb {verb!r}", file=sys.stderr)
        print(_usage_history(), file=sys.stderr)
        return 2

    opts = {
        "--ledger": str,
        "--limit": int,
        "--kind": str,
        "--command": str,
        "--report": str,
        "--window": int,
        "--min-baseline": int,
        "--mad-k": float,
        "--rel-floor": float,
    }
    values: dict = {}

    i = 0
    while i < len(rest):
        arg = rest[i]
        if arg in ("-h", "--help"):
            print(_usage_history())
            return 0
        if arg not in opts:
            print(f"unknown option {arg}", file=sys.stderr)
            print(_usage_history(), file=sys.stderr)
            return 2
        if i + 1 >= len(rest):
            print(f"{arg} needs an argument", file=sys.stderr)
            return 2
        try:
            values[arg] = opts[arg](rest[i + 1])
        except ValueError:
            print(f"{arg}: bad value {rest[i + 1]!r}", file=sys.stderr)
            return 2
        i += 2

    ledger = values.get("--ledger")

    if verb == "show":
        records = history.read_ledger(ledger)
        limit = values.get("--limit", 20)
        if not records:
            print(f"ledger {ledger or history.ledger_path()} is empty")
            return 0
        for record in records[-limit:]:
            print(
                f"{record.get('id', '?'):>16}  {record.get('ts', '?'):<25} "
                f"{record.get('kind', '?'):<10} "
                f"{' '.join(record.get('command', []))} "
                f"({len(record.get('series', {}))} series)"
            )
        print(f"{len(records)} records in {ledger or history.ledger_path()}")
        return 0

    if verb == "append":
        report_path = values.get("--report")
        if not report_path:
            print("history append needs --report PATH", file=sys.stderr)
            return 2
        try:
            report = json.loads(open(report_path).read())
        except (OSError, ValueError) as exc:
            print(f"cannot read report {report_path}: {exc}", file=sys.stderr)
            return 1
        record = history.record_from_report(report)
        record_id = history.append_record(record, path=ledger)
        if record_id is None:
            print("history disabled (REPRO_HISTORY=0); nothing appended")
            return 0
        print(
            f"appended {record_id} ({len(record['series'])} series) "
            f"-> {ledger or history.ledger_path()}"
        )
        return 0

    # verb == "check"
    command = values["--command"].split() if "--command" in values else None
    kwargs = {}
    if "--min-baseline" in values:
        kwargs["min_baseline"] = values["--min-baseline"]
    if "--mad-k" in values:
        kwargs["mad_k"] = values["--mad-k"]
    if "--rel-floor" in values:
        kwargs["rel_floor"] = values["--rel-floor"]
    result = history.check_latest(
        path=ledger,
        kind=values.get("--kind"),
        command=command,
        window=values.get("--window", history.DEFAULT_WINDOW),
        **kwargs,
    )
    if result is None:
        print(
            "history check: no matching records in "
            f"{ledger or history.ledger_path()} (informational pass)"
        )
        return 0
    print(result.render())
    return 0 if result.ok else 1


def dashboard_main(argv: list[str]) -> int:
    """Entry point for the ``dashboard`` subcommand."""
    from repro.obs import history
    from repro.obs.dashboard import render_dashboard

    out = "dashboard.html"
    ledger = None
    title = "repro telemetry"
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("-h", "--help"):
            print(_usage_dashboard())
            return 0
        if arg in ("--out", "--ledger", "--title"):
            if i + 1 >= len(argv):
                print(f"{arg} needs an argument", file=sys.stderr)
                return 2
            value = argv[i + 1]
            if arg == "--out":
                out = value
            elif arg == "--ledger":
                ledger = value
            else:
                title = value
            i += 2
            continue
        print(f"unknown option {arg}", file=sys.stderr)
        print(_usage_dashboard(), file=sys.stderr)
        return 2
    records = history.read_ledger(ledger)
    from pathlib import Path

    Path(out).write_text(render_dashboard(records, title=title))
    print(f"dashboard ({len(records)} records) -> {out}")
    return 0
