"""``python -m repro profile-design``: profile a core running a program.

The observability counterpart to co-simulation: instead of asking *is
the core correct*, ask *where do its cycles and energy go*.  One
profiling run drives a generated core through a benchmark on the
gate-level simulator with probes attached
(:mod:`repro.netlist.probe`) and produces:

* a per-module / per-cell-type energy attribution
  (:func:`repro.netlist.power.attributed_power_report`) whose buckets
  sum bit-exactly to the measured total,
* a per-instruction profile -- cycles-per-PC and energy-per-PC
  histograms annotated with disassembly, rendered as a
  flamegraph-style text breakdown and serialized as JSON,
* optionally a VCD waveform of the architectural nets (PC, flags,
  BARs, memory bus) for any external wave viewer.

Usage::

    python -m repro profile-design p1_8_2 --program crc8
    python -m repro profile-design p1_8_2 --vcd out.vcd \\
        --energy-report energy.json --top 8
    python -m repro profile-design p1_8_2 p2_8_2 p1_16_2 --jobs 3
        Several configs fan across worker processes
        (:func:`repro.exec.parallel_map`); per-config output paths get
        a ``.<config>`` suffix.

Profiled invocations (``--profile`` or an enabled obs layer) fold the
profiles into ``RUN_REPORT.json`` under the v2 schema's
``design_profiles`` key (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.coregen.config import CoreConfig, config_from_name
from repro.coregen.cosim import CoSimHarness
from repro.errors import ConfigError, ProgramError, SimulationError
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import span as _obs_span

_PROFILE_RUNS = _obs_counter("profile.design_runs")

#: Schema tag stamped into every profile dict (and the energy JSON).
PROFILE_SCHEMA = "repro.apps.design_profile/v1"

#: Probe groups recorded into the VCD by default: the architectural
#: state plus the memory/instruction bus.
DEFAULT_PROBE_GROUPS = ("pc", "flags", "bars", "bus")


def _benchmark_for(name: str, config: CoreConfig):
    """Build benchmark ``name`` at the widest kernel ``config`` runs.

    Kernels narrower than the core emulate the paper's sub-word
    workloads; profiling wants the *native* fit, so the widest
    supported kernel no wider than the datapath is chosen (falling
    back to the narrowest runnable kernel for wide cores running
    fixed-width programs such as ``crc8``).
    """
    from repro.programs import build_benchmark, runnable_configurations

    widths = sorted(
        kernel
        for kernel, core in runnable_configurations(name)
        if core == config.datawidth
    )
    if not widths:
        raise ProgramError(
            f"{name} does not run on a {config.datawidth}-bit core"
        )
    native = [w for w in widths if w <= config.datawidth]
    kernel_width = native[-1] if native else widths[0]
    return build_benchmark(
        name, kernel_width, config.datawidth, num_bars=config.num_bars
    )


def _run_to_halt(harness: CoSimHarness, max_cycles: int) -> None:
    """Step ``harness`` until its program halts (mirrors cosim).

    Single-stage cores step exactly as many cycles as the reference
    ISS executes instructions; multi-stage cores run until the PC
    parks in the HALT self-loop and memory writes go quiet.
    """
    from repro.sim.machine import Machine

    config = harness.config
    machine = Machine(
        harness.program,
        mem_size=config.data_memory_words(),
        num_bars=config.num_bars,
    )
    result = machine.run(max_steps=max_cycles)
    if not result.halted:
        raise SimulationError(f"{harness.program.name}: ISS did not halt")
    if config.pipeline_stages == 1:
        for _ in range(machine.stats.instructions):
            harness.step()
        return
    halt_pc = machine.pc & ((1 << max(1, config.pc_bits)) - 1)
    quiet = 0
    halt_sightings = 0
    for _ in range(max_cycles):
        harness.step()
        quiet = 0 if harness.wrote_last_cycle else quiet + 1
        if harness.pc == halt_pc:
            halt_sightings += 1
        if quiet >= 12 and halt_sightings >= 4:
            return
    raise SimulationError(f"{harness.program.name}: pipeline never quiesced")


def profile_design(
    config: CoreConfig,
    program_name: str = "crc8",
    technology: str = "EGFET",
    backend: str = "compiled",
    max_cycles: int = 200_000,
    vcd_path=None,
    top: int = 10,
    trace_maxlen: int | None = None,
    probe_names=(),
    probe_regex: str | None = None,
    probe_groups=DEFAULT_PROBE_GROUPS,
) -> dict:
    """Profile one core/program pair; returns a JSON-serializable dict.

    Args:
        config: The core to generate and simulate.
        program_name: Benchmark to run (see :data:`repro.programs.BENCHMARKS`).
        technology: ``"EGFET"`` or ``"CNT-TFT"`` cell energies.
        backend: Gate-level backend (``compiled`` default).
        max_cycles: Simulation bound before giving up.
        vcd_path: When set, write a VCD of the probed nets there.
        top: Instructions kept in the per-instruction section.
        trace_maxlen: Optional :class:`~repro.sim.trace.FetchTrace`
            window bound for very long runs.
        probe_names / probe_regex / probe_groups: Probe selection
            forwarded to :func:`repro.netlist.probe.resolve_probes`.

    The returned dict carries :data:`PROFILE_SCHEMA`, the attribution
    dicts (which sum bit-exactly to ``energy_per_cycle`` -- see
    :meth:`repro.netlist.power.AttributedPowerReport.conservation_error`),
    the per-instruction histogram, and trace-window accounting.
    """
    from repro.isa.disasm import disassemble
    from repro.netlist.power import attributed_power_report
    from repro.netlist.probe import (
        InstructionEnergyProfiler,
        WaveProbe,
        resolve_probes,
    )
    from repro.pdk import technology_library
    from repro.sim.trace import FetchTrace

    library = technology_library(technology)
    program = _benchmark_for(program_name, config)
    with _obs_span(
        "profile_design",
        design=config.name,
        program=program.name,
        technology=library.name,
        backend=backend,
    ):
        _PROFILE_RUNS.inc()
        harness = CoSimHarness(program, config, backend=backend)
        netlist = harness.netlist
        signals = resolve_probes(
            netlist,
            names=probe_names,
            regex=probe_regex,
            groups=probe_groups,
        )
        wave = WaveProbe(netlist, signals) if vcd_path is not None else None
        pc_signal = resolve_probes(netlist, groups=("pc",))[0]
        profiler = InstructionEnergyProfiler(
            netlist,
            library,
            pc_signal.nets,
            trace=FetchTrace(maxlen=trace_maxlen),
        )
        if wave is not None:
            harness.sim.attach_probe(wave)
        harness.sim.attach_probe(profiler)
        _run_to_halt(harness, max_cycles)

        cycles = harness.sim.cycles
        report = attributed_power_report(
            netlist, library, harness.sim.toggle_counts(), cycles
        )
        total_energy = profiler.total_energy
        instructions = []
        for pc, energy in profiler.energy_ranking(top=top):
            if pc < len(program.instructions):
                text = disassemble(program.instructions[pc])
            else:
                text = "(halt loop)"
            instructions.append(
                {
                    "pc": pc,
                    "disasm": text,
                    "cycles": profiler.cycles_by_pc[pc],
                    "energy": energy,
                    "share": energy / total_energy if total_energy else 0.0,
                }
            )
        profile = {
            "schema": PROFILE_SCHEMA,
            "design": config.name,
            "program": program.name,
            "technology": library.name,
            "backend": backend,
            "cycles": cycles,
            "energy_per_cycle": report.total.energy_per_cycle,
            "total_energy": total_energy,
            "activity": report.total.activity,
            "static_only_cells": report.static_only_cells,
            "by_module": report.by_module,
            "by_cell": report.by_cell,
            "toggles_by_module": report.toggles_by_module,
            "instructions": instructions,
            "trace": {
                "recorded": profiler.trace.recorded,
                "dropped": profiler.trace.dropped,
                "unique_addresses": profiler.trace.unique_addresses(),
            },
            "vcd": None,
        }
        if wave is not None:
            path = wave.write(vcd_path)
            profile["vcd"] = str(path)
        return profile


def _bar(share: float, width: int = 24) -> str:
    """Flamegraph-style share bar: ``#`` per ``1/width`` of the total."""
    return "#" * max(0, round(share * width))


def render_profile(profile: dict) -> str:
    """Terminal rendering of one :func:`profile_design` result."""
    from repro.eval.report import render_table
    from repro.units import to_nJ

    head = (
        f"{profile['design']} running {profile['program']} "
        f"({profile['technology']}, {profile['backend']}): "
        f"{profile['cycles']} cycles, "
        f"{to_nJ(profile['energy_per_cycle']):.1f} nJ/cycle, "
        f"activity {profile['activity']:.3f}, "
        f"{profile['static_only_cells']} static-only cells"
    )
    total = profile["energy_per_cycle"] or 1.0
    module_rows = [
        (
            name,
            f"{to_nJ(energy):.2f}",
            f"{100 * energy / total:.1f}%",
            _bar(energy / total),
        )
        for name, energy in sorted(
            profile["by_module"].items(), key=lambda kv: -kv[1]
        )
    ]
    modules = render_table(
        "Energy by module (nJ/cycle)",
        ("Module", "Energy", "Share", ""),
        module_rows,
    )
    instr_rows = [
        (
            entry["pc"],
            entry["disasm"],
            entry["cycles"],
            f"{to_nJ(entry['energy']):.1f}",
            f"{100 * entry['share']:.1f}%",
            _bar(entry["share"]),
        )
        for entry in profile["instructions"]
    ]
    instrs = render_table(
        "Hottest instructions (total nJ)",
        ("PC", "Instruction", "Cycles", "Energy", "Share", ""),
        instr_rows,
    )
    parts = [head, modules, instrs]
    if profile["trace"]["dropped"]:
        parts.append(
            f"note: trace window dropped {profile['trace']['dropped']} of "
            f"{profile['trace']['recorded']} fetches; instruction counts "
            "cover the retained tail only"
        )
    if profile["vcd"]:
        parts.append(f"waveform -> {profile['vcd']}")
    return "\n".join(parts)


def _profile_task(task: tuple) -> dict:
    """Picklable worker for :func:`profile_designs`: one (config, options)."""
    config, options = task
    return profile_design(config, **options)


def profile_designs(
    configs,
    jobs: int | None = None,
    per_config_options=None,
    **options,
) -> list[dict]:
    """Profile several configs, fanning across worker processes.

    Args:
        configs: :class:`CoreConfig` instances to profile.
        jobs: Worker processes (defaults to the session ``--jobs``).
        per_config_options: Optional per-config dict overrides (same
            length as ``configs``) -- e.g. distinct ``vcd_path`` values.
        **options: Shared :func:`profile_design` keyword arguments.

    Returns:
        One profile dict per config, in input order.
    """
    from repro.exec import parallel_map

    configs = list(configs)
    overrides = list(per_config_options or [{}] * len(configs))
    if len(overrides) != len(configs):
        raise ConfigError(
            f"{len(overrides)} option overrides for {len(configs)} configs"
        )
    tasks = [
        (config, {**options, **extra})
        for config, extra in zip(configs, overrides)
    ]
    return parallel_map(_profile_task, tasks, jobs=jobs, label="profile_design")


def _suffixed(path: str, name: str, multiple: bool) -> str:
    """Insert ``.name`` before the extension when several configs run."""
    if not multiple:
        return path
    p = Path(path)
    return str(p.with_name(f"{p.stem}.{name}{p.suffix}"))


def _usage_error(message: str) -> int:
    print(message, file=sys.stderr)
    print(__doc__, file=sys.stderr)
    return 2


def profile_main(argv: list[str]) -> int:
    """Entry point for ``python -m repro profile-design ...``."""
    import time

    from repro import obs

    program = "crc8"
    technology = "EGFET"
    backend = "compiled"
    names: list[str] = []
    vcd = None
    energy_report = None
    top = 10
    jobs = None
    max_cycles = 200_000
    trace_maxlen = None
    probe_names: list[str] = []
    probe_regex = None
    profile_flag = False
    report_out = "RUN_REPORT.json"

    i = 0
    while i < len(argv):
        arg = argv[i]

        def value() -> str:
            nonlocal i
            i += 1
            if i >= len(argv):
                raise ValueError(f"{arg} needs an argument")
            return argv[i]

        try:
            if arg == "--program":
                program = value()
            elif arg == "--technology":
                technology = value()
            elif arg == "--backend":
                backend = value()
            elif arg == "--vcd":
                vcd = value()
            elif arg == "--energy-report":
                energy_report = value()
            elif arg == "--top":
                top = int(value())
            elif arg == "--jobs":
                jobs = int(value())
            elif arg == "--max-cycles":
                max_cycles = int(value())
            elif arg == "--trace-maxlen":
                trace_maxlen = int(value())
            elif arg == "--probe":
                probe_names.extend(n for n in value().split(",") if n)
            elif arg == "--probe-regex":
                probe_regex = value()
            elif arg == "--profile":
                profile_flag = True
            elif arg == "--report-out":
                report_out = value()
            elif arg.startswith("-"):
                return _usage_error(f"unknown profile-design option {arg!r}")
            else:
                names.append(arg)
        except ValueError as error:
            return _usage_error(str(error))
        i += 1

    try:
        configs = [config_from_name(n) for n in (names or ["p1_8_2"])]
    except ConfigError as error:
        return _usage_error(str(error))

    profiled = profile_flag or obs.enabled()
    if profiled:
        obs.enable()
    start = time.perf_counter()

    multiple = len(configs) > 1
    overrides = [
        {
            "vcd_path": _suffixed(vcd, c.name, multiple) if vcd else None,
        }
        for c in configs
    ]
    try:
        profiles = profile_designs(
            configs,
            jobs=jobs,
            per_config_options=overrides,
            program_name=program,
            technology=technology,
            backend=backend,
            max_cycles=max_cycles,
            top=top,
            trace_maxlen=trace_maxlen,
            probe_names=tuple(probe_names),
            probe_regex=probe_regex,
        )
    except (ConfigError, ProgramError, SimulationError) as error:
        print(f"profile-design: {error}", file=sys.stderr)
        return 1

    for config, profile in zip(configs, profiles):
        print(render_profile(profile))
        if energy_report:
            path = Path(_suffixed(energy_report, config.name, multiple))
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(profile, indent=2) + "\n")
            print(f"energy report -> {path}")

    if profiled:
        wall = time.perf_counter() - start
        report = obs.build_run_report(
            ["profile-design", *(names or ["p1_8_2"])], wall, profiles=profiles
        )
        path = obs.write_run_report(report_out, report)
        print(f"run report -> {path}")
    return 0
