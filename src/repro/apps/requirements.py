"""Application requirements catalogue (Table 3).

The seventeen example applications the paper targets, with their sample
rates, precision needs, and duty-cycle classes.  These drive the
feasibility arguments of Section 4 (which applications an EGFET core's
few-Hz fmax can serve) and motivate the datawidth axis of the design
space (many applications need only 8 or 16 bits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DutyCycle(enum.Enum):
    """Coarse duty-cycle classes used in Table 3."""

    CONTINUOUS = "continuous"
    SECONDS = "seconds"
    MINUTES = "minutes"
    HOURS = "hours"
    SINGLE_USE = "single use"

    @property
    def typical_fraction(self) -> float:
        """Representative active-time fraction for lifetime estimates.

        Assumes a one-second active window per activation period.
        """
        return {
            DutyCycle.CONTINUOUS: 1.0,
            DutyCycle.SECONDS: 1.0 / 10.0,
            DutyCycle.MINUTES: 1.0 / 60.0,
            DutyCycle.HOURS: 1.0 / 3600.0,
            DutyCycle.SINGLE_USE: 1.0,
        }[self]


@dataclass(frozen=True)
class Application:
    """One Table 3 row.

    Attributes:
        name: Application name.
        sample_rate_hz: Maximum sensor sample rate in Hz.
        precision_bits: Data precision the computation needs.
        duty_cycle: Coarse activation-period class.
        ops_per_sample: Assumed instructions of processing per sample
            (a modest fixed estimate used for throughput feasibility).
    """

    name: str
    sample_rate_hz: float
    precision_bits: int
    duty_cycle: DutyCycle
    ops_per_sample: int = 10

    @property
    def required_ips(self) -> float:
        """Instructions per second the application needs while active."""
        return self.sample_rate_hz * self.ops_per_sample


#: Table 3 verbatim (rates are the table's upper bounds).
APPLICATIONS: tuple[Application, ...] = (
    Application("Blood Pressure Sensor", 100, 8, DutyCycle.HOURS),
    Application("Odor Sensor", 25, 8, DutyCycle.MINUTES),
    Application("Heart Beat Sensor", 4, 1, DutyCycle.SECONDS),
    Application("Pressure Sensor", 5.5, 12, DutyCycle.CONTINUOUS),
    Application("Light Level Sensor", 1, 16, DutyCycle.CONTINUOUS),
    Application("Trace Metal Sensor", 25, 16, DutyCycle.MINUTES),
    Application("Food Temp. Sensor", 1, 16, DutyCycle.MINUTES),
    Application("Alcohol Sensor", 1, 8, DutyCycle.SINGLE_USE),
    Application("Humidity Sensor", 10, 16, DutyCycle.CONTINUOUS),
    Application("Body Temperature Sensor", 1, 8, DutyCycle.MINUTES),
    Application("Smart Bandage", 0.01, 8, DutyCycle.CONTINUOUS),
    Application("Tremor Sensor", 25, 16, DutyCycle.SECONDS),
    Application("Oral-Nasal Airflow", 25, 8, DutyCycle.SECONDS),
    Application("Perspiration Sensor", 25, 16, DutyCycle.MINUTES),
    Application("Pedometer", 25, 1, DutyCycle.SECONDS),
    Application("Timer", 1, 1, DutyCycle.SINGLE_USE),
    Application("POS Computation", 100, 8, DutyCycle.SINGLE_USE),
)


def application_by_name(name: str) -> Application:
    """Look up a catalogue application by (partial) name."""
    for application in APPLICATIONS:
        if name.lower() in application.name.lower():
            return application
    raise KeyError(f"no application matching {name!r}")
