"""Printed-application catalogue and core-feasibility matching."""

from repro.apps.requirements import APPLICATIONS, Application, DutyCycle
from repro.apps.feasibility import FeasibilityVerdict, assess, feasible_applications

__all__ = [
    "APPLICATIONS",
    "Application",
    "DutyCycle",
    "FeasibilityVerdict",
    "assess",
    "feasible_applications",
]
