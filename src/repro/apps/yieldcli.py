"""``python -m repro yield``: fleet-scale Monte-Carlo yield campaigns.

Prints a virtual fleet of each named core configuration and reports
its fmax distribution, application-level functional yield, printed
cost per working unit, and battery-lifetime quantiles::

    python -m repro yield p1_8_2 --instances 100000 --jobs 2
    python -m repro yield p1_4_2 p1_8_2 --instances 20000 --sigma 0.3
    python -m repro yield p1_8_2 --device-yield 0.99995 --battery "Blue Spark 30"

Results are bit-identical for any ``--jobs`` (see
``docs/PARALLELISM.md``); ``--report PATH`` writes a full run report
(fed into the history ledger), and every campaign appends one compact
``yield`` history record so throughput and yield trend across runs.
"""

from __future__ import annotations

import sys
import time


def _usage() -> str:
    return (
        "usage: python -m repro yield CONFIG [CONFIG...]\n"
        "           [--instances N] [--jobs N] [--seed S] [--sigma X]\n"
        "           [--device-yield Y] [--technology EGFET|CNT]\n"
        "           [--program NAME] [--width N] [--lanes N] [--block N]\n"
        "           [--duty F] [--battery NAME] [--report PATH]"
    )


def yield_main(argv: list[str]) -> int:
    """Entry point for the ``yield`` subcommand."""
    configs: list[str] = []
    instances = 10_000
    jobs: int | None = None
    seed = 0xBEEF
    sigma = 0.2
    device_yield = 0.9999
    technology = "EGFET"
    program_name = "mult"
    width: int | None = None
    lanes: int | None = None
    block: int | None = None
    duty = 0.01
    battery = "Molex"
    report_path: str | None = None

    i = 0
    while i < len(argv):
        arg = argv[i]

        def value(cast=str):
            if i + 1 >= len(argv):
                raise ValueError(f"{arg} needs an argument")
            return cast(argv[i + 1])

        try:
            if arg == "--instances":
                instances = value(int)
                i += 1
            elif arg == "--jobs":
                jobs = value(int)
                i += 1
            elif arg == "--seed":
                seed = value(lambda s: int(s, 0))
                i += 1
            elif arg == "--sigma":
                sigma = value(float)
                i += 1
            elif arg == "--device-yield":
                device_yield = value(float)
                i += 1
            elif arg == "--technology":
                technology = value()
                i += 1
            elif arg == "--program":
                program_name = value()
                i += 1
            elif arg == "--width":
                width = value(int)
                i += 1
            elif arg == "--lanes":
                lanes = value(int)
                i += 1
            elif arg == "--block":
                block = value(int)
                i += 1
            elif arg == "--duty":
                duty = value(float)
                i += 1
            elif arg == "--battery":
                battery = value()
                i += 1
            elif arg == "--report":
                report_path = value()
                i += 1
            elif arg in ("-h", "--help"):
                print(_usage())
                return 0
            elif arg.startswith("-"):
                print(f"unknown option {arg}", file=sys.stderr)
                print(_usage(), file=sys.stderr)
                return 2
            else:
                configs.append(arg)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        i += 1

    if not configs:
        print("need at least one core configuration", file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2

    from repro import obs
    from repro.coregen.config import config_from_name
    from repro.errors import ReproError
    from repro.mc.engine import DEFAULT_LANES, YieldSpec, run_yield_campaign
    from repro.mc.timing import DEFAULT_BLOCK
    from repro.obs import history

    started = time.perf_counter()
    campaigns: dict[str, dict] = {}
    try:
        for name in configs:
            config = config_from_name(name)
            spec = YieldSpec(
                config=config,
                technology=technology,
                program_name=program_name,
                program_width=width if width is not None else 8,
                sigma=sigma,
                device_yield=device_yield,
                seed=seed,
                lanes=lanes if lanes is not None else DEFAULT_LANES,
                block=block if block is not None else DEFAULT_BLOCK,
                duty=duty,
                battery_name=battery,
            )
            report = run_yield_campaign(spec, instances, jobs=jobs)
            print(report.render())
            campaigns[report.design] = report.to_dict()
            history.append_record(
                history.build_record(
                    "yield",
                    ["yield", report.design, report.technology, report.program],
                    {
                        "mc.seconds": round(report.wall_seconds, 3),
                        "mc.instances_per_s": round(
                            report.instances_per_second, 1
                        ),
                        "mc.functional_yield": round(
                            report.functional_yield, 4
                        ),
                        "mc.fmax_p05": round(report.fmax_quantiles[0.05], 2),
                    },
                )
            )
    except ReproError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    if report_path:
        wall = time.perf_counter() - started
        run_report = obs.build_run_report(
            ["yield"] + list(argv),
            wall,
            extra={"yield_campaigns": campaigns},
        )
        obs.write_run_report(report_path, run_report)
        print(f"report: {report_path}")
    return 0
