"""Printed memory-array models (Section 6, Table 6).

The paper's Harvard cores attach two memories:

* a **crosspoint instruction ROM** (:mod:`repro.memory.rom`) -- printed
  conductive dots short selected crossbar junctions; optionally
  multi-level cells read through a printed ADC
  (:mod:`repro.memory.adc`);
* an **SRAM data memory** (:mod:`repro.memory.ram`).

:mod:`repro.memory.worm` models the prior-art NOR-architecture WORM
memory of Myny et al. that the crosspoint ROM is compared against.

Per-bit device characteristics are the paper's measured Table 6 values
for EGFET; CNT-TFT equivalents are derived (documented in DESIGN.md)
and anchored to the paper's quoted 302 us CNT ROM access latency.
"""

from repro.memory.devices import DeviceSpec, EGFET_MEMORY_DEVICES, CNT_MEMORY_DEVICES
from repro.memory.rom import CrosspointRom
from repro.memory.ram import SramArray
from repro.memory.worm import WormMemory

__all__ = [
    "DeviceSpec",
    "EGFET_MEMORY_DEVICES",
    "CNT_MEMORY_DEVICES",
    "CrosspointRom",
    "SramArray",
    "WormMemory",
]
