"""Printed ADC model for multi-level-cell ROM sensing.

Each multi-level sub-block's analog sense voltage is digitized by a
printed ADC (Table 6 characterizes the 2-bit and 4-bit instances).
This module exposes them directly; :class:`~repro.memory.rom.
CrosspointRom` composes one per sub-block.
"""

from __future__ import annotations

from repro.errors import MemoryModelError
from repro.memory.devices import DeviceSpec, memory_devices


def adc_for_depth(bits: int, technology: str = "EGFET") -> DeviceSpec:
    """The ADC needed to resolve ``bits`` bits per printed dot.

    Raises:
        MemoryModelError: For depths the paper did not characterize.
    """
    key = {2: "adc2", 4: "adc4"}.get(bits)
    if key is None:
        raise MemoryModelError(f"no characterized ADC for {bits}-bit cells")
    return memory_devices(technology)[key]


def quantization_levels(bits: int) -> int:
    """Distinct dot-resistance levels a ``bits``-bit cell must encode."""
    if bits < 1:
        raise MemoryModelError("cells encode at least one bit")
    return 1 << bits
