"""Crosspoint instruction ROM model (Section 6, Figure 9).

Architecture: a crossbar whose crosspoints are shorted by printing a
conductive dot (PEDOT:PSS) for a 1, left open for a 0.  One word
occupies one crosspoint per *sub-block*; all sub-blocks share row and
column decoders and each shares one sensing resistor across its
columns, so a word's bits are read in parallel.  Density can be raised
by printing dots whose geometry encodes multiple bits (multi-level
cells), read back through a printed ADC per sub-block.

Structural accounting follows the paper's worked example: a 16 x 9
memory needs 9 sub-blocks of 16 rows x 1 column -- 220 transistors and
52 pull-up resistors in 20.42 mm^2, about half the area of the Myny et
al. WORM design (:mod:`repro.memory.worm`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.errors import MemoryModelError
from repro.memory.devices import DeviceSpec, memory_devices
from repro.units import mm2

#: Area of one row driver (select transistor + wiring), calibrated so
#: the 16x9 example lands on the published 20.42 mm^2.
_ROW_DRIVER_AREA = mm2(0.657)

#: Area of one sub-block's shared sensing resistor network.
_SENSE_AREA = mm2(0.2)

#: Area of one decoder input inverter.
_DECODER_INV_AREA = mm2(0.224)

#: Rows per sub-block before the array folds into more columns
#: (matches the paper's 16-row example blocks).
_MAX_ROWS = 16


@dataclass(frozen=True)
class CrosspointRom:
    """A crosspoint ROM storing ``words`` x ``bits_per_word``.

    Args:
        words: Number of instruction words (1..256).
        bits_per_word: Instruction width in bits.
        bits_per_cell: 1 (single-level), 2, or 4 (multi-level dots,
            read through per-sub-block ADCs).
        technology: ``"EGFET"`` (Table 6) or ``"CNT-TFT"`` (derived).
    """

    words: int
    bits_per_word: int
    bits_per_cell: int = 1
    technology: str = "EGFET"

    def __post_init__(self) -> None:
        if self.words < 1 or self.words > 256:
            raise MemoryModelError(f"ROM words {self.words} out of range")
        if self.bits_per_word < 1:
            raise MemoryModelError("ROM needs at least one bit per word")
        if self.bits_per_cell not in (1, 2, 4):
            raise MemoryModelError(
                f"unsupported multi-level depth {self.bits_per_cell}"
            )

    # -- geometry ----------------------------------------------------------

    @property
    def subblocks(self) -> int:
        """One sub-block per cell of the word."""
        return math.ceil(self.bits_per_word / self.bits_per_cell)

    @property
    def rows(self) -> int:
        return min(self.words, _MAX_ROWS)

    @property
    def columns(self) -> int:
        """Columns per sub-block."""
        return math.ceil(self.words / self.rows)

    @property
    def total_cells(self) -> int:
        return self.words * self.subblocks

    # -- devices ------------------------------------------------------------

    @cached_property
    def _cell(self) -> DeviceSpec:
        key = {1: "rom_bit", 2: "rom_mlc2", 4: "rom_mlc4"}[self.bits_per_cell]
        return memory_devices(self.technology)[key]

    @cached_property
    def _adc(self) -> DeviceSpec | None:
        if self.bits_per_cell == 1:
            return None
        key = {2: "adc2", 4: "adc4"}[self.bits_per_cell]
        return memory_devices(self.technology)[key]

    @property
    def transistors(self) -> int:
        """One access transistor per row and per column of every
        sub-block, plus the shared row decoder."""
        per_subblock = self.rows + self.columns
        address_bits = max(1, math.ceil(math.log2(self.words)))
        decoder = self.rows * address_bits + address_bits
        return self.subblocks * per_subblock + decoder

    @property
    def pullup_resistors(self) -> int:
        """Row pull-ups, per-sub-block column pull-ups and sensing
        resistors, plus decoder pull-ups."""
        return (
            self.rows
            + self.subblocks * self.columns
            + self.subblocks
            + self.rows
        )

    # -- characteristics -------------------------------------------------------

    @property
    def area(self) -> float:
        """Printed area in m^2 (cells + drivers + sensing + decoder)."""
        address_bits = max(1, math.ceil(math.log2(self.words)))
        area = self.total_cells * self._cell.area
        area += self.rows * _ROW_DRIVER_AREA
        area += self.subblocks * _SENSE_AREA
        area += address_bits * _DECODER_INV_AREA
        if self._adc is not None:
            area += self.subblocks * self._adc.area
        return area

    @property
    def read_delay(self) -> float:
        """One word-fetch latency (cell sense + ADC conversion)."""
        delay = self._cell.delay
        if self._adc is not None:
            delay += self._adc.delay
        return delay

    @property
    def read_energy(self) -> float:
        """Energy of one word fetch (all sub-blocks sense in parallel)."""
        energy = self.subblocks * self._cell.access_energy
        if self._adc is not None:
            energy += self.subblocks * self._adc.access_energy
        return energy

    @property
    def static_power(self) -> float:
        """Idle power of the array in watts."""
        power = self.subblocks * self._cell.static_power
        if self._adc is not None:
            power += self.subblocks * self._adc.static_power
        return power

    def average_power(self, fetch_rate: float) -> float:
        """Average power at ``fetch_rate`` word reads per second."""
        return self.read_energy * fetch_rate + self.static_power
