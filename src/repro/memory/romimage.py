"""Print-ready crosspoint ROM images.

The crosspoint ROM stores a 1 by printing a conductive dot over a
crossbar junction (Figure 9).  This module turns an encoded program
into the *dot map* an inkjet printer needs: per sub-block, which
(row, column) junctions receive a dot.  It also renders a human-
checkable ASCII proof and reports material usage (printed dots),
which is proportional to ink cost.

Layout follows :class:`~repro.memory.rom.CrosspointRom`: word ``w``
lives at row ``w mod rows``, column ``w div rows``; sub-block ``s``
holds bit ``s`` of every word (single-level cells).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryModelError
from repro.memory.rom import CrosspointRom


@dataclass(frozen=True)
class RomDotMap:
    """The printable dot pattern of one instruction ROM.

    Attributes:
        rom: The array geometry/cost model this map targets.
        dots: Per sub-block, the set of (row, column) dotted junctions.
    """

    rom: CrosspointRom
    dots: tuple[frozenset, ...]

    @property
    def printed_dots(self) -> int:
        """Total conductive dots to print (ink usage)."""
        return sum(len(block) for block in self.dots)

    @property
    def dot_density(self) -> float:
        """Fraction of junctions dotted (1-bits / capacity)."""
        capacity = self.rom.total_cells
        return self.printed_dots / capacity if capacity else 0.0

    def word(self, address: int) -> int:
        """Read a word back out of the dot map (self-check)."""
        row = address % self.rom.rows
        column = address // self.rom.rows
        value = 0
        for bit, block in enumerate(self.dots):
            if (row, column) in block:
                value |= 1 << bit
        return value

    def render(self, subblock: int = 0) -> str:
        """ASCII proof of one sub-block: ``#`` = dot, ``.`` = open."""
        if not 0 <= subblock < len(self.dots):
            raise MemoryModelError(f"no sub-block {subblock}")
        block = self.dots[subblock]
        lines = [f"sub-block {subblock} ({self.rom.rows} rows x "
                 f"{self.rom.columns} cols)"]
        for row in range(self.rom.rows):
            lines.append(
                "".join(
                    "#" if (row, column) in block else "."
                    for column in range(self.rom.columns)
                )
            )
        return "\n".join(lines) + "\n"


def dot_map(words: list[int], bits_per_word: int) -> RomDotMap:
    """Build the printable dot map for an encoded program image.

    Args:
        words: Encoded instruction words (as from
            :func:`repro.coregen.isa_map.encode_program_for_core`).
        bits_per_word: Instruction width; words must fit it.
    """
    if not words:
        raise MemoryModelError("cannot print an empty ROM")
    rom = CrosspointRom(words=len(words), bits_per_word=bits_per_word)
    blocks: list[set] = [set() for _ in range(bits_per_word)]
    for address, word in enumerate(words):
        if word >= (1 << bits_per_word):
            raise MemoryModelError(
                f"word {word:#x} at {address} exceeds {bits_per_word} bits"
            )
        row = address % rom.rows
        column = address // rom.rows
        for bit in range(bits_per_word):
            if (word >> bit) & 1:
                blocks[bit].add((row, column))
    return RomDotMap(rom=rom, dots=tuple(frozenset(b) for b in blocks))
