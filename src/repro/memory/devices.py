"""Memory device characteristics (Table 6) for both technologies.

EGFET values are the paper's measured Table 6 numbers.  The paper does
not tabulate CNT-TFT memory devices; the CNT entries here are *derived*
(and documented as a substitution in DESIGN.md): the ROM read latency
is the paper's quoted 302 us (Section 8), and the remaining values
scale the EGFET entries by the ROM-latency ratio (delays), the
cell-library area ratio (areas), and hold the paper's RAM-vs-ROM cost
ratios fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryModelError
from repro.units import mm2, ms, uW, us


@dataclass(frozen=True)
class DeviceSpec:
    """One memory component's characteristics (SI units).

    Attributes:
        name: Component name as in Table 6.
        area: Footprint in m^2 (per bit for cells, per unit for ADCs).
        active_power: Power while being accessed, in watts.
        static_power: Idle power, in watts.
        delay: Access latency in seconds.
    """

    name: str
    area: float
    active_power: float
    static_power: float
    delay: float

    def __post_init__(self) -> None:
        if min(self.area, self.active_power, self.static_power, self.delay) < 0:
            raise MemoryModelError(f"{self.name}: negative characteristic")

    @property
    def access_energy(self) -> float:
        """Energy of one access: active power over one access latency."""
        return self.active_power * self.delay


#: Table 6 verbatim (EGFET, 1 V).
EGFET_MEMORY_DEVICES: dict[str, DeviceSpec] = {
    "ram_bit": DeviceSpec("1-bit RAM", mm2(0.84), uW(16), uW(3.23), ms(2.5)),
    "rom_bit": DeviceSpec("1-bit ROM", mm2(0.05), uW(2.77), uW(0.362), ms(1.03)),
    "rom_mlc2": DeviceSpec("2-bit ROM", mm2(0.057), uW(1.87), uW(0.362), ms(1.56)),
    "rom_mlc4": DeviceSpec("4-bit ROM", mm2(0.087), uW(3.01), uW(0.362), ms(3.1)),
    "adc2": DeviceSpec("2-bit ADC", mm2(3.76), uW(56.8), uW(4.5), ms(5.63)),
    "adc4": DeviceSpec("4-bit ADC", mm2(25.4), uW(306), uW(22.5), ms(13.8)),
}

#: Passive-array delay scale, anchored to the paper's quoted 302 us
#: CNT ROM access latency (crosspoint sensing is an RC problem of the
#: printed passives, so it barely tracks transistor speed).
_CNT_PASSIVE_DELAY_SCALE = us(302) / EGFET_MEMORY_DEVICES["rom_bit"].delay

#: Active-circuit delay scale: a CNT SRAM / ADC is built from CNT
#: transistors and speeds up with the logic (Table 2 DFF ratio).
_CNT_ACTIVE_DELAY_SCALE = 1.0 / 1000.0

#: Area scale: CNT cells are ~2 orders of magnitude denser (Table 2).
_CNT_AREA_SCALE = 0.06

#: Power scale: 3 V supply, smaller devices; net increase in active
#: power per access is roughly the cell-library energy ratio per time.
_CNT_POWER_SCALE = 3.0

#: Which Table 6 components are passive crosspoint structures.
_PASSIVE_COMPONENTS = frozenset({"rom_bit", "rom_mlc2", "rom_mlc4"})


def _derive_cnt(key: str, spec: DeviceSpec) -> DeviceSpec:
    delay_scale = (
        _CNT_PASSIVE_DELAY_SCALE
        if key in _PASSIVE_COMPONENTS
        else _CNT_ACTIVE_DELAY_SCALE
    )
    return DeviceSpec(
        name=f"{spec.name} (CNT, derived)",
        area=spec.area * _CNT_AREA_SCALE,
        active_power=spec.active_power * _CNT_POWER_SCALE,
        static_power=spec.static_power * _CNT_POWER_SCALE,
        delay=spec.delay * delay_scale,
    )


#: Derived CNT-TFT equivalents (see module docstring).  The split
#: matters architecturally: the *passive* ROM stays ~300 us while the
#: *transistor-based* SRAM tracks logic speed -- which is exactly why
#: the paper finds CNT execution time dominated by instruction fetches.
CNT_MEMORY_DEVICES: dict[str, DeviceSpec] = {
    key: _derive_cnt(key, spec) for key, spec in EGFET_MEMORY_DEVICES.items()
}


def memory_devices(technology: str) -> dict[str, DeviceSpec]:
    """Device table for ``technology`` (``"EGFET"`` or ``"CNT-TFT"``)."""
    if technology == "EGFET":
        return EGFET_MEMORY_DEVICES
    if technology in ("CNT", "CNT-TFT"):
        return CNT_MEMORY_DEVICES
    raise MemoryModelError(f"unknown technology {technology!r}")
