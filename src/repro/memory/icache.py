"""Instruction-cache study for ROM-latency-bound CNT cores.

Section 8 observes that CNT-TFT execution times are dominated by the
302 us crosspoint-ROM access latency and suggests "a more complex
microarchitecture including an instruction cache may be appropriate".
This module implements that extension: a direct-mapped, one-word-line
loop cache built from printed latch cells, with a trace-driven hit-rate
simulator and a cost model in the standard cell library.

The tradeoff being studied: cache storage is *sequential* logic -- the
most expensive resource in printed technologies -- so the cache only
pays off where the ROM latency it hides is large relative to the core
cycle (CNT-TFT yes, EGFET no).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import MemoryModelError
from repro.pdk.cells import CellLibrary


@dataclass(frozen=True)
class CacheSimResult:
    """Trace-replay outcome of one cache configuration."""

    words: int
    hits: int
    misses: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


def simulate_icache(trace: Iterable[int], words: int) -> CacheSimResult:
    """Replay a fetch trace through a direct-mapped one-word-line
    cache (index = pc mod words, tag = pc div words)."""
    if words < 1 or words & (words - 1):
        raise MemoryModelError(f"cache words must be a power of two, got {words}")
    tags: list[int | None] = [None] * words
    hits = misses = 0
    for pc in trace:
        index = pc % words
        tag = pc // words
        if tags[index] == tag:
            hits += 1
        else:
            misses += 1
            tags[index] = tag
    return CacheSimResult(words=words, hits=hits, misses=misses)


@dataclass(frozen=True)
class ICacheCost:
    """Physical cost of one cache configuration in one technology.

    Storage is one latch per data/tag/valid bit plus a tag comparator
    (XNOR tree) and output muxing, all priced from the cell library.
    """

    words: int
    instruction_bits: int
    area: float
    hit_delay: float
    hit_energy: float
    idle_energy_per_cycle: float


def icache_cost(
    library: CellLibrary, words: int, instruction_bits: int, pc_bits: int = 8
) -> ICacheCost:
    """Price a ``words`` x ``instruction_bits`` loop cache."""
    if words < 1:
        raise MemoryModelError("cache needs at least one word")
    index_bits = max(0, int(math.log2(words)))
    tag_bits = max(1, pc_bits - index_bits)
    latch = library.cell("LATCHX1")
    xnor = library.cell("XNOR2X1")
    and2 = library.cell("AND2X1")
    nand = library.cell("NAND2X1")
    inv = library.cell("INVX1")

    storage_bits = words * (instruction_bits + tag_bits + 1)  # +valid
    comparator_cells = tag_bits  # XNORs
    reduce_cells = max(1, tag_bits - 1)
    mux_cells = instruction_bits * 3 * max(1, index_bits)  # NAND-NAND muxing

    area = (
        storage_bits * latch.area
        + comparator_cells * xnor.area
        + reduce_cells * and2.area
        + mux_cells * nand.area
        + index_bits * inv.area
    )
    # A hit reads through comparator + mux; energy charges the active
    # row's latches plus the lookup logic.
    hit_delay = (
        xnor.mean_delay
        + reduce_cells.bit_length() * and2.mean_delay
        + max(1, index_bits) * 2 * nand.mean_delay
    )
    hit_energy = (
        (instruction_bits + tag_bits) * latch.energy * 0.1
        + comparator_cells * xnor.energy
        + mux_cells * nand.energy * 0.25
    )
    idle = storage_bits * latch.energy * 0.01
    return ICacheCost(
        words=words,
        instruction_bits=instruction_bits,
        area=area,
        hit_delay=hit_delay,
        hit_energy=hit_energy,
        idle_energy_per_cycle=idle,
    )
