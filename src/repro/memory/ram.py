"""SRAM data-memory model.

The data memory is a conventional printed SRAM (Section 6): the paper
characterizes the single-bit cell (Table 6) and scales linearly for
arrays -- Table 5's RAM-based instruction memory numbers reproduce as
``bits x cell`` with no additional overhead, so this model follows the
same accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import MemoryModelError
from repro.memory.devices import DeviceSpec, memory_devices


@dataclass(frozen=True)
class SramArray:
    """An SRAM array of ``words`` x ``bits_per_word``.

    Args:
        words: Word count (the system evaluator sizes this to exactly
            the application's data footprint, per Section 8).
        bits_per_word: Data word width in bits.
        technology: ``"EGFET"`` (Table 6) or ``"CNT-TFT"`` (derived).
    """

    words: int
    bits_per_word: int
    technology: str = "EGFET"

    def __post_init__(self) -> None:
        if self.words < 1:
            raise MemoryModelError("SRAM needs at least one word")
        if self.bits_per_word < 1:
            raise MemoryModelError("SRAM needs at least one bit per word")

    @cached_property
    def _cell(self) -> DeviceSpec:
        return memory_devices(self.technology)["ram_bit"]

    @property
    def total_bits(self) -> int:
        return self.words * self.bits_per_word

    @property
    def area(self) -> float:
        """Printed area in m^2 (per-bit scaling, Table 5 accounting)."""
        return self.total_bits * self._cell.area

    @property
    def access_delay(self) -> float:
        """One word access latency in seconds."""
        return self._cell.delay

    @property
    def access_energy(self) -> float:
        """Energy of one word access (row of cells active)."""
        return self.bits_per_word * self._cell.access_energy

    @property
    def static_power(self) -> float:
        """Idle power of the whole array in watts."""
        return self.total_bits * self._cell.static_power

    def average_power(self, access_rate: float) -> float:
        """Average power at ``access_rate`` word accesses per second."""
        return self.access_energy * access_rate + self.static_power

    @property
    def worst_case_power(self) -> float:
        """Power with the whole array active (Table 5's accounting:
        the published instruction-memory powers scale as
        ``bits x (active + static)`` per cell)."""
        return self.total_bits * (self._cell.active_power + self._cell.static_power)
