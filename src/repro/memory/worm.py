"""NOR-architecture WORM memory baseline (Myny et al. [79]).

The prior-art inkjet-programmable write-once-read-many instruction
memory the crosspoint ROM is compared against in Section 6: a NOR
array addressed through a 4-to-16 line decoder.  The published 16 x 9
instance needs 815 transistors (plus 189 more for programming support)
in 62.1 mm^2; this model scales those anchors per bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MemoryModelError
from repro.units import mm2

#: Published anchors for the 16 x 9 = 144-bit instance.
_ANCHOR_BITS = 16 * 9
_ANCHOR_TRANSISTORS = 815
_ANCHOR_PROGRAMMING_TRANSISTORS = 189
_ANCHOR_AREA = mm2(62.1)


@dataclass(frozen=True)
class WormMemory:
    """A WORM memory of ``words`` x ``bits_per_word``.

    Args:
        words: Word count.
        bits_per_word: Word width in bits.
        include_programming: Count the write-support transistors the
            published design adds for field programmability.
    """

    words: int
    bits_per_word: int
    include_programming: bool = False

    def __post_init__(self) -> None:
        if self.words < 1 or self.bits_per_word < 1:
            raise MemoryModelError("WORM needs at least one word and one bit")

    @property
    def total_bits(self) -> int:
        return self.words * self.bits_per_word

    @property
    def transistors(self) -> int:
        scale = self.total_bits / _ANCHOR_BITS
        count = math.ceil(_ANCHOR_TRANSISTORS * scale)
        if self.include_programming:
            count += math.ceil(_ANCHOR_PROGRAMMING_TRANSISTORS * scale)
        return count

    @property
    def area(self) -> float:
        """Printed area in m^2, scaled from the published instance."""
        return _ANCHOR_AREA * self.total_bits / _ANCHOR_BITS
