"""TPC code generation: AST -> TP-ISA :class:`Program`.

Strategy (everything is data memory -- it is a memory-memory machine):

* **Constants** live in a deduplicated pool of pre-initialized data
  words, so using ``x + 3`` costs no STORE at runtime.
* **Temporaries** come from a reusable pool; expression evaluation is
  destructive-on-destination (TP-ISA style), with left operands that
  are already temporaries updated in place.
* **Array indexing** compiles to pointer arithmetic plus the
  pointer-loading SETBAR: ``ptr = index + base; SETBAR 1, ptr`` and the
  element is ``b1:0``.
* **Comparisons** map onto the C/Z flags of CMP; ``<=`` and ``>``
  compile as their swapped-operand duals so every relation needs only
  a single-flag branch.
* **Shifts** (constant amounts) expand to carry-cleared RLC/RRC
  chains -- true logical shifts.

The result is an ordinary :class:`~repro.isa.program.Program`: it runs
on the ISS, co-simulates against gate-level cores, shrinks through the
PS-ISA analyzer, and exports to ROM dot maps like any hand-written
kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.isa.program import MAX_DATA_WORDS, Program
from repro.isa.spec import Flag, Instruction, MemOperand, Mnemonic
from repro.lang.parser import (
    Assign, Binary, Condition, If, Index, Module, Name, Number, Unary,
    VarDecl, While, parse,
)


class CompileError(ReproError):
    """TPC program cannot be lowered to TP-ISA."""


@dataclass
class _Codegen:
    datawidth: int
    num_bars: int
    instructions: list[Instruction] = field(default_factory=list)
    data: dict[int, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    arrays: dict[str, int] = field(default_factory=dict)  # name -> length
    _next_address: int = 0
    _const_pool: dict[int, int] = field(default_factory=dict)
    _free_temps: list[int] = field(default_factory=list)
    _temp_addresses: set = field(default_factory=set)
    _labels: dict[str, int] = field(default_factory=dict)
    _fixups: list[tuple[int, str]] = field(default_factory=list)
    _label_counter: int = 0

    # -- storage -----------------------------------------------------------

    def _allocate(self, name: str, words: int) -> int:
        address = self._next_address
        if address + words > MAX_DATA_WORDS:
            raise CompileError("program exceeds the 256-word data memory")
        self._next_address += words
        self.symbols[name] = address
        return address

    def declare(self, decl: VarDecl) -> None:
        if decl.name in self.symbols:
            raise CompileError(f"duplicate variable {decl.name!r}")
        address = self._allocate(decl.name, decl.length)
        limit = (1 << self.datawidth) - 1
        for offset, value in enumerate(decl.init):
            if value > limit:
                raise CompileError(
                    f"initializer {value} exceeds {self.datawidth} bits"
                )
            self.data[address + offset] = value
        if decl.is_array:
            self.arrays[decl.name] = decl.length

    def const(self, value: int) -> int:
        """Address of a pooled constant."""
        if value > (1 << self.datawidth) - 1:
            raise CompileError(f"constant {value} exceeds {self.datawidth} bits")
        if value not in self._const_pool:
            address = self._allocate(f"$const_{value}", 1)
            self.data[address] = value
            self._const_pool[value] = address
        return self._const_pool[value]

    def temp(self) -> int:
        if self._free_temps:
            return self._free_temps.pop()
        address = self._allocate(f"$tmp{len(self._temp_addresses)}", 1)
        self._temp_addresses.add(address)
        return address

    def release(self, address: int) -> None:
        if address in self._temp_addresses:
            self._free_temps.append(address)

    # -- emission ------------------------------------------------------------

    def emit(self, mnemonic: Mnemonic, **fields) -> None:
        self.instructions.append(Instruction(mnemonic, **fields))

    def label(self) -> str:
        self._label_counter += 1
        return f"L{self._label_counter}"

    def place(self, label: str) -> None:
        self._labels[label] = len(self.instructions)

    def branch(self, mnemonic: Mnemonic, label: str, mask: int) -> None:
        self._fixups.append((len(self.instructions), label))
        self.emit(mnemonic, target=0, mask=mask)

    def jump(self, label: str) -> None:
        self.branch(Mnemonic.BRN, label, 0)

    def copy(self, dst: int, src: int) -> None:
        """dst = src via the XOR/OR idiom (no-op on self-assignment:
        the zeroing XOR would destroy the value first)."""
        if dst == src:
            return
        self.emit(Mnemonic.XOR, dst=MemOperand(dst), src=MemOperand(dst))
        self.emit(Mnemonic.OR, dst=MemOperand(dst), src=MemOperand(src))

    # -- expressions ------------------------------------------------------------

    _BINARY = {
        "+": Mnemonic.ADD,
        "-": Mnemonic.SUB,
        "&": Mnemonic.AND,
        "|": Mnemonic.OR,
        "^": Mnemonic.XOR,
    }

    def expr(self, node) -> int:
        """Compile an expression; returns the address holding it."""
        if isinstance(node, Number):
            return self.const(node.value)
        if isinstance(node, Name):
            return self._scalar(node.name)
        if isinstance(node, Index):
            element = self._element_pointer(node)
            result = self.temp()
            self.emit(Mnemonic.XOR, dst=MemOperand(result), src=MemOperand(result))
            self.emit(Mnemonic.OR, dst=MemOperand(result), src=element)
            return result
        if isinstance(node, Unary):
            source = self.expr(node.operand)
            self.release(source)
            result = self.temp()
            self.emit(Mnemonic.NOT, dst=MemOperand(result), src=MemOperand(source))
            return result
        if isinstance(node, Binary):
            return self._binary(node)
        raise CompileError(f"cannot compile expression node {node!r}")

    def _scalar(self, name: str) -> int:
        if name not in self.symbols:
            raise CompileError(f"undeclared variable {name!r}")
        if name in self.arrays:
            raise CompileError(f"array {name!r} used without an index")
        return self.symbols[name]

    def _element_pointer(self, node: Index) -> MemOperand:
        """Point BAR 1 at ``name[index]`` and return its operand."""
        if self.num_bars < 2:
            raise CompileError("array indexing needs a settable BAR")
        if node.name not in self.arrays:
            raise CompileError(f"{node.name!r} is not an array")
        base = self.symbols[node.name]
        index_address = self.expr(node.index)
        pointer = self.temp()
        self.copy(pointer, index_address)
        self.release(index_address)
        self.emit(
            Mnemonic.ADD,
            dst=MemOperand(pointer),
            src=MemOperand(self.const(base)),
        )
        self.emit(Mnemonic.SETBAR, bar_index=1, src=MemOperand(pointer))
        self.release(pointer)
        return MemOperand(0, bar=1)

    def _binary(self, node: Binary) -> int:
        if node.op in ("<<", ">>"):
            return self._shift(node)
        left = self.expr(node.left)
        right = self.expr(node.right)
        if left in self._temp_addresses:
            destination = left
        else:
            destination = self.temp()
            self.copy(destination, left)
        self.emit(
            self._BINARY[node.op],
            dst=MemOperand(destination),
            src=MemOperand(right),
        )
        self.release(right)
        return destination

    def _shift(self, node: Binary) -> int:
        amount = node.right.value % self.datawidth
        source = self.expr(node.left)
        if source in self._temp_addresses:
            destination = source
        else:
            destination = self.temp()
            self.copy(destination, source)
        zero = self.const(0)
        rotate = Mnemonic.RLC if node.op == "<<" else Mnemonic.RRC
        for _ in range(amount):
            # Clear carry, then rotate-through-carry = logical shift.
            self.emit(Mnemonic.TEST, dst=MemOperand(zero), src=MemOperand(zero))
            self.emit(rotate, dst=MemOperand(destination), src=MemOperand(destination))
        return destination

    # -- statements ------------------------------------------------------------------

    def statement(self, node) -> None:
        if isinstance(node, Assign):
            self._assign(node)
        elif isinstance(node, If):
            self._if(node)
        elif isinstance(node, While):
            self._while(node)
        else:
            raise CompileError(f"cannot compile statement {node!r}")

    def _assign(self, node: Assign) -> None:
        value = self.expr(node.value)
        if isinstance(node.target, Name):
            self.copy(self._scalar(node.target.name), value)
        else:
            element = self._element_pointer(node.target)
            self.emit(Mnemonic.XOR, dst=element, src=element)
            self.emit(Mnemonic.OR, dst=element, src=MemOperand(value))
        self.release(value)

    def _branch_if_false(self, condition: Condition, label: str) -> None:
        """CMP + a single-flag branch to ``label`` when false.

        ``<=`` and ``>`` compare with swapped operands so every
        relation tests exactly one flag (C = no borrow, Z = equal).
        """
        swap = condition.op in ("<=", ">")
        left = self.expr(condition.right if swap else condition.left)
        right = self.expr(condition.left if swap else condition.right)
        self.emit(Mnemonic.CMP, dst=MemOperand(left), src=MemOperand(right))
        self.release(left)
        self.release(right)
        carry, zero = int(Flag.C), int(Flag.Z)
        op = condition.op
        if op == "==":
            self.branch(Mnemonic.BRN, label, zero)      # false when Z == 0
        elif op == "!=":
            self.branch(Mnemonic.BR, label, zero)       # false when Z == 1
        elif op in ("<", ">"):                          # l < r (or swapped)
            self.branch(Mnemonic.BR, label, carry)      # false when no borrow
        else:                                           # '>=' or '<='
            self.branch(Mnemonic.BRN, label, carry)     # false when borrow

    def _if(self, node: If) -> None:
        else_label = self.label()
        self._branch_if_false(node.condition, else_label)
        for statement in node.then_body:
            self.statement(statement)
        if node.else_body:
            end_label = self.label()
            self.jump(end_label)
            self.place(else_label)
            for statement in node.else_body:
                self.statement(statement)
            self.place(end_label)
        else:
            self.place(else_label)

    def _while(self, node: While) -> None:
        head = self.label()
        end = self.label()
        self.place(head)
        self._branch_if_false(node.condition, end)
        for statement in node.body:
            self.statement(statement)
        self.jump(head)
        self.place(end)

    # -- finalization -----------------------------------------------------------------

    def finish(self, name: str, module: Module) -> Program:
        from repro.isa.program import MAX_INSTRUCTIONS

        if len(self.instructions) >= MAX_INSTRUCTIONS:
            raise CompileError(
                f"program needs {len(self.instructions) + 1} instructions; "
                f"the 8-bit PC allows {MAX_INSTRUCTIONS}"
            )
        here = len(self.instructions)
        self.instructions.append(Instruction(Mnemonic.BRN, target=here, mask=0))
        for position, label in self._fixups:
            old = self.instructions[position]
            self.instructions[position] = Instruction(
                old.mnemonic, target=self._labels[label], mask=old.mask
            )
        return Program(
            name=name,
            instructions=self.instructions,
            datawidth=self.datawidth,
            num_bars=self.num_bars,
            data=dict(self.data),
            symbols={
                symbol: address
                for symbol, address in self.symbols.items()
                if not symbol.startswith("$")
            },
            description=f"compiled from TPC ({len(module.statements)} statements)",
        )


def compile_tpc(
    source: str,
    name: str = "tpc",
    datawidth: int = 8,
    num_bars: int = 2,
) -> Program:
    """Compile TPC source to a runnable TP-ISA :class:`Program`.

    Args:
        source: TPC program text (see :mod:`repro.lang.parser`).
        name: Program name.
        datawidth: Word width every variable gets (4/8/16/32).
        num_bars: BAR configuration (array code needs >= 2).

    Raises:
        ParseError: On malformed source.
        CompileError: On semantic errors (undeclared names, constants
            that do not fit, data-memory overflow...).
    """
    module = parse(source)
    codegen = _Codegen(datawidth=datawidth, num_bars=num_bars)
    for declaration in module.declarations:
        codegen.declare(declaration)
    for statement in module.statements:
        codegen.statement(statement)
    return codegen.finish(name, module)
