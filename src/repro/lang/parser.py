"""TPC tokenizer, AST, and recursive-descent parser.

Grammar (all values are unsigned words of the program's datawidth)::

    program  := item*
    item     := decl | stmt
    decl     := 'var' NAME ('=' NUMBER)?
              | 'var' NAME '[' NUMBER ']' ('=' '{' NUMBER (',' NUMBER)* '}')?
    stmt     := lvalue '=' expr
              | 'if' cond '{' stmt* '}' ('else' '{' stmt* '}')?
              | 'while' cond '{' stmt* '}'
    lvalue   := NAME ('[' expr ']')?
    cond     := expr ('=='|'!='|'<'|'<='|'>'|'>=') expr
    expr     := unary (('+'|'-'|'&'|'|'|'^'|'<<'|'>>') unary)*
    unary    := '~' unary | NAME ('[' expr ']')? | NUMBER | '(' expr ')'

Binary operators associate left-to-right with *no precedence levels*
(parenthesize!); shift amounts must be constants.  Comments run from
``#`` to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ReproError


class ParseError(ReproError):
    """TPC source was malformed."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"{message} (line {line})")
        self.line = line


# -- AST ---------------------------------------------------------------------


@dataclass(frozen=True)
class Number:
    """A literal constant."""

    value: int


@dataclass(frozen=True)
class Name:
    """A scalar variable reference."""

    name: str


@dataclass(frozen=True)
class Index:
    """An array element reference ``name[expr]``."""

    name: str
    index: object


@dataclass(frozen=True)
class Unary:
    """``~expr``."""

    operand: object


@dataclass(frozen=True)
class Binary:
    """A left-associated binary operation."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class Condition:
    """A relational test between two expressions."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class VarDecl:
    """Scalar or array declaration with optional initializers."""

    name: str
    length: int = 1
    init: tuple[int, ...] = ()
    is_array: bool = False


@dataclass(frozen=True)
class Assign:
    """``lvalue = expr``."""

    target: object  # Name or Index
    value: object


@dataclass(frozen=True)
class If:
    """Conditional with optional else block."""

    condition: Condition
    then_body: tuple
    else_body: tuple = ()


@dataclass(frozen=True)
class While:
    """Top-tested loop."""

    condition: Condition
    body: tuple


@dataclass(frozen=True)
class Module:
    """A parsed TPC program."""

    declarations: tuple[VarDecl, ...]
    statements: tuple


# -- tokenizer -------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<number>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><<|>>|==|!=|<=|>=|[=+\-&|^~<>{}\[\](),])
    """,
    re.VERBOSE,
)

KEYWORDS = {"var", "if", "else", "while"}


@dataclass
class _Token:
    kind: str  # 'number' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    line: int


def tokenize(source: str) -> list[_Token]:
    """Tokenize TPC source; raises ParseError on stray characters."""
    tokens: list[_Token] = []
    line = 1
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(f"unexpected character {source[position]!r}", line)
        position = match.end()
        kind = match.lastgroup
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws", "comment"):
            continue
        text = match.group()
        if kind == "name" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(_Token(kind, text, line))
    tokens.append(_Token("eof", "", line))
    return tokens


# -- parser ---------------------------------------------------------------------

BINARY_OPS = {"+", "-", "&", "|", "^", "<<", ">>"}
RELATIONAL_OPS = {"==", "!=", "<", "<=", ">", ">="}


@dataclass
class _Parser:
    tokens: list[_Token]
    position: int = 0
    declarations: list = field(default_factory=list)

    @property
    def current(self) -> _Token:
        return self.tokens[self.position]

    def advance(self) -> _Token:
        token = self.current
        self.position += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(f"expected {wanted!r}, found {token.text!r}", token.line)
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            self.advance()
            return True
        return False

    # -- toplevel --------------------------------------------------------

    def parse_module(self) -> Module:
        statements = []
        while self.current.kind != "eof":
            if self.current.kind == "keyword" and self.current.text == "var":
                self.declarations.append(self.parse_decl())
            else:
                statements.append(self.parse_statement())
        return Module(tuple(self.declarations), tuple(statements))

    def parse_decl(self) -> VarDecl:
        self.expect("keyword", "var")
        name = self.expect("name").text
        if self.accept("op", "["):
            length = self._number()
            self.expect("op", "]")
            init: tuple[int, ...] = ()
            if self.accept("op", "="):
                self.expect("op", "{")
                values = [self._number()]
                while self.accept("op", ","):
                    values.append(self._number())
                self.expect("op", "}")
                if len(values) > length:
                    raise ParseError(
                        f"{len(values)} initializers for {length}-element array",
                        self.current.line,
                    )
                init = tuple(values)
            return VarDecl(name, length=length, init=init, is_array=True)
        init = ()
        if self.accept("op", "="):
            init = (self._number(),)
        return VarDecl(name, init=init)

    def _number(self) -> int:
        token = self.expect("number")
        return int(token.text, 0)

    # -- statements --------------------------------------------------------------

    def parse_statement(self):
        token = self.current
        if token.kind == "keyword" and token.text == "if":
            return self.parse_if()
        if token.kind == "keyword" and token.text == "while":
            return self.parse_while()
        if token.kind == "name":
            return self.parse_assign()
        raise ParseError(f"unexpected {token.text!r}", token.line)

    def parse_block(self) -> tuple:
        self.expect("op", "{")
        body = []
        while not self.accept("op", "}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated block", self.current.line)
            body.append(self.parse_statement())
        return tuple(body)

    def parse_if(self) -> If:
        self.expect("keyword", "if")
        condition = self.parse_condition()
        then_body = self.parse_block()
        else_body: tuple = ()
        if self.accept("keyword", "else"):
            else_body = self.parse_block()
        return If(condition, then_body, else_body)

    def parse_while(self) -> While:
        self.expect("keyword", "while")
        condition = self.parse_condition()
        return While(condition, self.parse_block())

    def parse_assign(self) -> Assign:
        name = self.expect("name").text
        if self.accept("op", "["):
            index = self.parse_expression()
            self.expect("op", "]")
            target: object = Index(name, index)
        else:
            target = Name(name)
        self.expect("op", "=")
        return Assign(target, self.parse_expression())

    # -- expressions ------------------------------------------------------------------

    def parse_condition(self) -> Condition:
        left = self.parse_expression()
        token = self.current
        if token.kind != "op" or token.text not in RELATIONAL_OPS:
            raise ParseError(f"expected a comparison, found {token.text!r}", token.line)
        self.advance()
        right = self.parse_expression()
        return Condition(token.text, left, right)

    def parse_expression(self):
        node = self.parse_unary()
        while self.current.kind == "op" and self.current.text in BINARY_OPS:
            op = self.advance().text
            right = self.parse_unary()
            if op in ("<<", ">>") and not isinstance(right, Number):
                raise ParseError("shift amounts must be constants", self.current.line)
            node = Binary(op, node, right)
        return node

    def parse_unary(self):
        token = self.current
        if token.kind == "op" and token.text == "~":
            self.advance()
            return Unary(self.parse_unary())
        if token.kind == "op" and token.text == "(":
            self.advance()
            node = self.parse_expression()
            self.expect("op", ")")
            return node
        if token.kind == "number":
            self.advance()
            return Number(int(token.text, 0))
        if token.kind == "name":
            self.advance()
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                return Index(token.text, index)
            return Name(token.text)
        raise ParseError(f"unexpected {token.text!r} in expression", token.line)


def parse(source: str) -> Module:
    """Parse TPC source into a :class:`Module`."""
    return _Parser(tokenize(source)).parse_module()
