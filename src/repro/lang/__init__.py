"""TPC: a tiny imperative language compiled to TP-ISA.

The paper's case for printed *microprocessors* over printed ASICs is
programmability -- update prices on a shelf tag, retune a monitoring
algorithm per patient -- which presumes programs are written by people
who will not hand-allocate memory operands.  TPC is the smallest
language that makes TP-ISA practical: unsigned word variables and
arrays, expressions, ``if``/``else`` and ``while``, compiled through
the same :class:`~repro.isa.program.Program` container the rest of the
flow consumes (so compiled programs run on the ISS, co-simulate on
gate-level cores, shrink through the PS-ISA analyzer, and print to
crosspoint ROM dot maps unchanged).

    from repro.lang import compile_tpc

    program = compile_tpc('''
        var n = 10
        var total = 0
        while n != 0 {
            total = total + n
            n = n - 1
        }
    ''')
"""

from repro.lang.compiler import compile_tpc
from repro.lang.parser import ParseError, parse

__all__ = ["compile_tpc", "parse", "ParseError"]
