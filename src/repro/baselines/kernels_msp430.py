"""The seven paper benchmarks for the openMSP430.

Register-machine code using the real addressing modes: loop kernels
walk arrays through auto-increment pointers, the decision tree compares
against immediate thresholds.  Word counts and cycle counts follow the
MSP430 cost model in :mod:`repro.baselines.msp430`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines.msp430 import (
    AsmMsp430, Msp430, MspStats,
    R4, R5, R6, R7, R8, R9,
    absolute, imm, indexed, indirect, reg,
)
from repro.programs import crc8 as crc8_kernel
from repro.programs import dtree as dtree_kernel
from repro.programs.common import ARRAY_ELEMENTS, deterministic_values

#: Word addresses of benchmark data (word aligned).
DATA = 0x0400
ARR = 0x0420


@dataclass
class MspKernel:
    """One built openMSP430 benchmark."""

    name: str
    program: list
    labels: dict[str, int]
    size_bytes: int
    loader: Callable[[Msp430], None]
    reader: Callable[[Msp430], dict]

    def execute(self, max_steps: int = 2_000_000) -> tuple[MspStats, dict]:
        cpu = Msp430(self.program, self.labels, memory_size=8192)
        self.loader(cpu)
        stats = cpu.run(max_steps)
        return stats, self.reader(cpu)


def _kernel(name, asm, loader, reader) -> MspKernel:
    program, labels = asm.finish()
    return MspKernel(
        name=name,
        program=program,
        labels=labels,
        size_bytes=asm.size_bytes,
        loader=loader,
        reader=reader,
    )


def _poke_words(cpu: Msp430, address: int, values) -> None:
    for index, value in enumerate(values):
        cpu.write_word(address + 2 * index, value)


def mult16(a_value: int | None = None, b_value: int | None = None) -> MspKernel:
    """16-bit shift-add multiply; product at DATA+4."""
    inputs = deterministic_values(seed=0xA8, count=2, bits=8)
    a_value = inputs[0] if a_value is None else a_value
    b_value = inputs[1] if b_value is None else b_value

    asm = AsmMsp430()
    asm.mov(absolute(DATA), reg(R4))        # multiplicand
    asm.mov(absolute(DATA + 2), reg(R5))    # multiplier
    asm.mov(imm(0), reg(R6))                # product
    asm.mov(imm(16), reg(R7))               # count
    asm.label("loop")
    asm.mov(reg(R5), reg(R8))
    asm.and_(imm(1), reg(R8))
    asm.jz("skip")
    asm.add(reg(R4), reg(R6))
    asm.label("skip")
    asm.add(reg(R4), reg(R4))               # multiplicand <<= 1
    asm.rra(reg(R5))                        # multiplier >>= 1
    asm.sub(imm(1), reg(R7))
    asm.jnz("loop")
    asm.mov(reg(R6), absolute(DATA + 4))
    asm.halt()

    return _kernel(
        "mult", asm,
        loader=lambda cpu: _poke_words(cpu, DATA, [a_value, b_value]),
        reader=lambda cpu: {"product": cpu.read_word(DATA + 4)},
    )


def div16(dividend: int | None = None, divisor: int | None = None) -> MspKernel:
    """16-bit restoring division (branch-based carry propagation)."""
    dividend = 199 if dividend is None else dividend
    divisor = 13 if divisor is None else divisor

    asm = AsmMsp430()
    asm.mov(absolute(DATA), reg(R4))        # dividend (shifts left)
    asm.mov(absolute(DATA + 2), reg(R5))    # divisor
    asm.mov(imm(0), reg(R6))                # quotient
    asm.mov(imm(0), reg(R7))                # remainder
    asm.mov(imm(16), reg(R8))
    asm.label("loop")
    asm.add(reg(R6), reg(R6))               # quotient <<= 1
    asm.add(reg(R4), reg(R4))               # dividend <<= 1, C = old MSB
    asm.addc(reg(R7), reg(R7))              # remainder = rem*2 + C
    asm.cmp(reg(R5), reg(R7))               # remainder - divisor
    asm.jnc("next")                         # C clear: remainder < divisor
    asm.sub(reg(R5), reg(R7))
    asm.bis(imm(1), reg(R6))                # quotient |= 1
    asm.label("next")
    asm.sub(imm(1), reg(R8))
    asm.jnz("loop")
    asm.mov(reg(R6), absolute(DATA + 4))
    asm.mov(reg(R7), absolute(DATA + 6))
    asm.halt()

    return _kernel(
        "div", asm,
        loader=lambda cpu: _poke_words(cpu, DATA, [dividend, divisor]),
        reader=lambda cpu: {
            "quotient": cpu.read_word(DATA + 4),
            "remainder": cpu.read_word(DATA + 6),
        },
    )


def insort16(values: list[int] | None = None) -> MspKernel:
    """Insertion sort of 16 words at ARR."""
    values = (
        deterministic_values(seed=0x58, count=ARRAY_ELEMENTS, bits=8)
        if values is None
        else values
    )

    asm = AsmMsp430()
    asm.mov(imm(ARR + 2), reg(R4))          # &arr[i]
    asm.mov(imm(ARRAY_ELEMENTS - 1), reg(R5))
    asm.label("outer")
    asm.mov(reg(R4), reg(R6))               # &arr[j]
    asm.label("inner")
    asm.mov(indirect(R6), reg(R7))          # arr[j]
    asm.mov(reg(R6), reg(R9))
    asm.sub(imm(2), reg(R9))                # &arr[j-1]
    asm.mov(indirect(R9), reg(R8))          # arr[j-1]
    asm.cmp(reg(R7), reg(R8))               # arr[j-1] - arr[j]
    asm.jnc("placed")                       # no borrow+? C clear: arr[j-1] < arr[j]
    asm.jz("placed")
    asm.mov(reg(R8), indexed(R6, 0))        # arr[j] = old arr[j-1]
    asm.mov(reg(R7), indexed(R9, 0))        # arr[j-1] = old arr[j]
    asm.sub(imm(2), reg(R6))
    asm.cmp(imm(ARR), reg(R6))
    asm.jnz("inner")
    asm.label("placed")
    asm.add(imm(2), reg(R4))
    asm.sub(imm(1), reg(R5))
    asm.jnz("outer")
    asm.halt()

    return _kernel(
        "inSort", asm,
        loader=lambda cpu: _poke_words(cpu, ARR, values),
        reader=lambda cpu: {
            "sorted": [cpu.read_word(ARR + 2 * k) for k in range(ARRAY_ELEMENTS)]
        },
    )


def intavg16(values: list[int] | None = None) -> MspKernel:
    """Average of 16 words; result at DATA."""
    values = (
        deterministic_values(seed=0xA9, count=ARRAY_ELEMENTS, bits=8)
        if values is None
        else values
    )

    asm = AsmMsp430()
    asm.mov(imm(ARR), reg(R4))
    asm.mov(imm(0), reg(R5))
    asm.mov(imm(ARRAY_ELEMENTS), reg(R6))
    asm.label("loop")
    asm.add(indirect(R4, autoincrement=True), reg(R5))
    asm.sub(imm(1), reg(R6))
    asm.jnz("loop")
    for _ in range(4):
        asm.rra(reg(R5))
    asm.mov(reg(R5), absolute(DATA))
    asm.halt()

    return _kernel(
        "intAvg", asm,
        loader=lambda cpu: _poke_words(cpu, ARR, values),
        reader=lambda cpu: {"avg": cpu.read_word(DATA)},
    )


def thold16(values: list[int] | None = None, threshold: int | None = None) -> MspKernel:
    """Count of words >= threshold; count at DATA+2."""
    values = (
        deterministic_values(seed=0x78, count=ARRAY_ELEMENTS, bits=8)
        if values is None
        else values
    )
    threshold = 0x80 if threshold is None else threshold

    asm = AsmMsp430()
    asm.mov(absolute(DATA), reg(R7))        # threshold
    asm.mov(imm(ARR), reg(R4))
    asm.mov(imm(0), reg(R5))
    asm.mov(imm(ARRAY_ELEMENTS), reg(R6))
    asm.label("loop")
    asm.mov(indirect(R4, autoincrement=True), reg(R8))
    asm.cmp(reg(R7), reg(R8))               # element - threshold
    asm.jnc("skip")                         # C clear: element < threshold
    asm.add(imm(1), reg(R5))
    asm.label("skip")
    asm.sub(imm(1), reg(R6))
    asm.jnz("loop")
    asm.mov(reg(R5), absolute(DATA + 2))
    asm.halt()

    return _kernel(
        "tHold", asm,
        loader=lambda cpu: (
            _poke_words(cpu, DATA, [threshold]),
            _poke_words(cpu, ARR, values),
        ),
        reader=lambda cpu: {"count": cpu.read_word(DATA + 2)},
    )


def crc8_16(stream: list[int] | None = None) -> MspKernel:
    """CRC-8/ATM over 16 byte-valued words; crc at DATA."""
    stream = crc8_kernel.default_inputs() if stream is None else stream

    asm = AsmMsp430()
    asm.mov(imm(ARR), reg(R4))
    asm.mov(imm(0), reg(R5))                # crc (9-bit intermediate)
    asm.mov(imm(len(stream)), reg(R6))
    asm.label("byte")
    asm.xor(indirect(R4, autoincrement=True), reg(R5))
    asm.mov(imm(8), reg(R7))
    asm.label("bit")
    asm.add(reg(R5), reg(R5))               # crc <<= 1
    asm.mov(reg(R5), reg(R8))
    asm.and_(imm(0x100), reg(R8))
    asm.jz("no_poly")
    asm.xor(imm(crc8_kernel.POLYNOMIAL | 0x100), reg(R5))
    asm.label("no_poly")
    asm.sub(imm(1), reg(R7))
    asm.jnz("bit")
    asm.sub(imm(1), reg(R6))
    asm.jnz("byte")
    asm.mov(reg(R5), absolute(DATA))
    asm.halt()

    return _kernel(
        "crc8", asm,
        loader=lambda cpu: _poke_words(cpu, ARR, stream),
        reader=lambda cpu: {"crc": cpu.read_word(DATA) & 0xFF},
    )


def dtree16(inputs: list[int] | None = None) -> MspKernel:
    """The deterministic 50-node decision tree; class at DATA."""
    inputs = dtree_kernel.default_inputs(8) if inputs is None else inputs
    tree = dtree_kernel._build_tree(dtree_kernel.INTERNAL_NODES)

    asm = AsmMsp430()

    def emit(node) -> None:
        if node.is_leaf:
            asm.mov(imm(node.leaf_class), absolute(DATA))
            asm.jmp("end")
            return
        asm.cmp(imm(node.threshold), absolute(ARR + 2 * node.feature))
        asm.jc(f"right_{node.index}")       # input >= threshold
        emit(node.left)
        asm.label(f"right_{node.index}")
        emit(node.right)

    emit(tree)
    asm.label("end")
    asm.halt()

    return _kernel(
        "dTree", asm,
        loader=lambda cpu: _poke_words(cpu, ARR, inputs),
        reader=lambda cpu: {"result": cpu.read_word(DATA)},
    )


def insort16_data(values: list[int] | None = None) -> MspKernel:
    """16-bit-data insertion sort (native word width; inputs change)."""
    values = (
        deterministic_values(seed=0x59, count=ARRAY_ELEMENTS, bits=16)
        if values is None
        else values
    )
    return insort16(values)


#: Builder registry for the aggregation layer.
MSP430_KERNELS: dict[str, Callable[..., MspKernel]] = {
    "mult": mult16,
    "div": div16,
    "inSort": insort16,
    "inSort16": insort16_data,
    "intAvg": intavg16,
    "tHold": thold16,
    "crc8": crc8_16,
    "dTree": dtree16,
}
