"""Uniform access to every (baseline core, benchmark) pairing.

Combines the per-ISA kernel builders with the published Table 4
characterization to produce the application-level quantities Section 8
compares against TP-ISA: static code size (instruction-memory demand,
Table 5), execution time (``cycles / fmax``), and core energy
(``power x time``) in either printed technology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.kernels_i8080 import I8080_KERNELS
from repro.baselines.kernels_msp430 import MSP430_KERNELS
from repro.baselines.kernels_zpu import ZPU_KERNELS
from repro.baselines.specs import BASELINE_SPECS
from repro.errors import ConfigError

#: Baseline core names (Table 4 order).
BASELINE_CORES = ("openMSP430", "Z80", "light8080", "ZPU_small")

#: Benchmark names shared with the TP-ISA suite (``inSort16`` is the
#: 16-bit-data variant behind Section 8's >1000 s observation).
BENCHMARK_NAMES = (
    "mult", "div", "inSort", "inSort16", "intAvg", "tHold", "crc8", "dTree"
)


@dataclass(frozen=True)
class BaselineRun:
    """Result of running one benchmark on one baseline core."""

    core: str
    benchmark: str
    technology: str
    size_bytes: int
    instructions: int
    cycles: int
    time_seconds: float
    core_energy_joules: float
    result: dict

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8


def build_kernel(core: str, benchmark: str, **kwargs):
    """Build (assemble) one benchmark for one baseline core."""
    if core == "light8080":
        builder = I8080_KERNELS.get(benchmark)
        return builder(z80=False, **kwargs) if builder else _missing(core, benchmark)
    if core == "Z80":
        builder = I8080_KERNELS.get(benchmark)
        return builder(z80=True, **kwargs) if builder else _missing(core, benchmark)
    if core == "ZPU_small":
        builder = ZPU_KERNELS.get(benchmark)
        return builder(**kwargs) if builder else _missing(core, benchmark)
    if core == "openMSP430":
        builder = MSP430_KERNELS.get(benchmark)
        return builder(**kwargs) if builder else _missing(core, benchmark)
    raise ConfigError(f"unknown baseline core {core!r}")


def _missing(core: str, benchmark: str):
    raise ConfigError(f"benchmark {benchmark!r} not implemented for {core!r}")


def _cycles(core: str, stats) -> int:
    """Synthesized-clock cycles for a run.

    The microcoded 8080-family cores spend one clock per T-state; the
    ZPU and MSP430 simulators report cycles directly.
    """
    if core in ("light8080", "Z80"):
        return stats.t_states
    return stats.cycles


def run_baseline(
    core: str, benchmark: str, technology: str = "EGFET", **kwargs
) -> BaselineRun:
    """Assemble, execute, and time one benchmark on one baseline.

    Args:
        core: One of :data:`BASELINE_CORES`.
        benchmark: One of :data:`BENCHMARK_NAMES`.
        technology: ``"EGFET"`` or ``"CNT-TFT"`` (selects fmax/power
            from Table 4).
        **kwargs: Forwarded to the kernel builder (custom inputs).
    """
    kernel = build_kernel(core, benchmark, **kwargs)
    stats, result = kernel.execute()
    spec = BASELINE_SPECS[core]
    point = spec.point(technology)
    cycles = _cycles(core, stats)
    time_seconds = cycles / point.fmax
    return BaselineRun(
        core=core,
        benchmark=benchmark,
        technology=technology,
        size_bytes=kernel.size_bytes,
        instructions=stats.instructions,
        cycles=cycles,
        time_seconds=time_seconds,
        core_energy_joules=point.power * time_seconds,
        result=result,
    )
