"""The seven paper benchmarks hand-written for the 8080/Z80.

Data lives at fixed absolute addresses above the code.  Each builder
returns an :class:`I8080Kernel` exposing the static code size (Table 5)
and an ``execute`` method returning dynamic statistics plus results
(verified against golden models in the test suite).

The same 8080-subset code runs on both light8080 (8080 timings) and
Z80 (Z80 timings); the Z80 column of Table 5 noted essentially equal
code sizes for the two, matching this arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines.i8080 import (
    A, B, C, D, E, H, L,
    BC, DE, HL,
    Asm8080, CpuStats, I8080,
)
from repro.programs import crc8 as crc8_kernel
from repro.programs import dtree as dtree_kernel
from repro.programs.common import ARRAY_ELEMENTS, deterministic_values

#: Base address of benchmark data (above code, below stack).
DATA = 0x0400
ARR = 0x0410


@dataclass
class I8080Kernel:
    """One assembled benchmark for the 8080/Z80."""

    name: str
    code: bytes
    loader: Callable[[I8080], None]
    reader: Callable[[I8080], dict]
    z80: bool = False

    @property
    def size_bytes(self) -> int:
        return len(self.code)

    def execute(self, max_steps: int = 2_000_000) -> tuple[CpuStats, dict]:
        cpu = I8080(self.code, z80_timing=self.z80)
        self.loader(cpu)
        stats = cpu.run(max_steps)
        return stats, self.reader(cpu)


def _poke(cpu: I8080, address: int, values) -> None:
    for index, value in enumerate(values):
        cpu.memory[address + index] = value & 0xFF


def mult8(a_value: int | None = None, b_value: int | None = None, z80: bool = False) -> I8080Kernel:
    """8-bit shift-add multiply; product at DATA+2."""
    inputs = deterministic_values(seed=0xA8, count=2, bits=8)
    a_value = inputs[0] if a_value is None else a_value
    b_value = inputs[1] if b_value is None else b_value

    asm = Asm8080(z80)
    asm.lda(DATA + 1)          # multiplier
    asm.mov(C, A)
    asm.lda(DATA)              # multiplicand
    asm.mov(D, A)
    asm.mvi(B, 8)
    asm.mvi(E, 0)              # product
    asm.label("loop")
    asm.mov(A, C)
    asm.rrc()
    asm.mov(C, A)
    asm.jnc("skip")
    asm.mov(A, E)
    asm.add(D)
    asm.mov(E, A)
    asm.label("skip")
    asm.mov(A, D)
    asm.add(A)                 # multiplicand <<= 1
    asm.mov(D, A)
    asm.dcr(B)
    asm.jnz("loop")
    asm.mov(A, E)
    asm.sta(DATA + 2)
    asm.hlt()

    return I8080Kernel(
        name="mult",
        code=asm.assemble(),
        loader=lambda cpu: _poke(cpu, DATA, [a_value, b_value]),
        reader=lambda cpu: {"product": cpu.memory[DATA + 2]},
        z80=z80,
    )


def mult8_z80_optimized(
    a_value: int | None = None, b_value: int | None = None
) -> I8080Kernel:
    """Z80-idiomatic multiply: DJNZ loop control and JR short branches.

    The paper compiled both Z80 and light8080 through the same 8080-
    subset toolchain (Table 5 shows identical sizes); this variant
    shows what the Z80's extra instructions buy when targeted
    natively.
    """
    inputs = deterministic_values(seed=0xA8, count=2, bits=8)
    a_value = inputs[0] if a_value is None else a_value
    b_value = inputs[1] if b_value is None else b_value

    asm = Asm8080(z80=True)
    asm.lda(DATA + 1)
    asm.mov(C, A)
    asm.lda(DATA)
    asm.mov(D, A)
    asm.mvi(B, 8)
    asm.mvi(E, 0)
    asm.label("loop")
    asm.mov(A, C)
    asm.rrc()
    asm.mov(C, A)
    asm.jnc("skip")
    asm.mov(A, E)
    asm.add(D)
    asm.mov(E, A)
    asm.label("skip")
    asm.mov(A, D)
    asm.add(A)
    asm.mov(D, A)
    asm.djnz("loop")
    asm.mov(A, E)
    asm.sta(DATA + 2)
    asm.hlt()

    return I8080Kernel(
        name="mult_z80opt",
        code=asm.assemble(),
        loader=lambda cpu: _poke(cpu, DATA, [a_value, b_value]),
        reader=lambda cpu: {"product": cpu.memory[DATA + 2]},
        z80=True,
    )


def div8(dividend: int | None = None, divisor: int | None = None, z80: bool = False) -> I8080Kernel:
    """8-bit restoring division; quotient at DATA+2, remainder DATA+3."""
    dividend = 199 if dividend is None else dividend
    divisor = 13 if divisor is None else divisor

    asm = Asm8080(z80)
    asm.lda(DATA)              # dividend -> C (shifts left)
    asm.mov(C, A)
    asm.lda(DATA + 1)          # divisor -> D
    asm.mov(D, A)
    asm.mvi(B, 8)
    asm.mvi(L, 0)              # remainder
    asm.label("loop")
    asm.mov(A, C)              # shift dividend left, MSB -> CY
    asm.add(A)
    asm.mov(C, A)
    asm.mov(A, L)              # remainder = (remainder << 1) | CY
    asm.ral()
    asm.mov(L, A)
    asm.sub(D)                 # trial subtract
    asm.jc("restore")
    asm.mov(L, A)              # accept
    asm.inr(C)                 # quotient bit (dividend LSB is 0 here)
    asm.label("restore")
    asm.dcr(B)
    asm.jnz("loop")
    asm.mov(A, C)
    asm.sta(DATA + 2)
    asm.mov(A, L)
    asm.sta(DATA + 3)
    asm.hlt()

    return I8080Kernel(
        name="div",
        code=asm.assemble(),
        loader=lambda cpu: _poke(cpu, DATA, [dividend, divisor]),
        reader=lambda cpu: {
            "quotient": cpu.memory[DATA + 2],
            "remainder": cpu.memory[DATA + 3],
        },
        z80=z80,
    )


def insort8(values: list[int] | None = None, z80: bool = False) -> I8080Kernel:
    """Insertion sort of 16 bytes at ARR (in place)."""
    values = (
        deterministic_values(seed=0x58, count=ARRAY_ELEMENTS, bits=8)
        if values is None
        else values
    )

    asm = Asm8080(z80)
    asm.mvi(C, ARRAY_ELEMENTS - 1)  # outer counter
    asm.lxi(HL, ARR + 1)            # HL = &arr[i]
    asm.label("outer")
    asm.mov(D, H)                   # DE = &arr[j]
    asm.mov(E, L)
    asm.label("inner")
    asm.ldax(DE)                    # A = arr[j]
    asm.mov(B, A)
    asm.dcx(DE)                     # DE = &arr[j-1]
    asm.ldax(DE)                    # A = arr[j-1]
    asm.cmp(B)
    asm.jc("placed")                # arr[j-1] < arr[j]
    asm.jz("placed")
    asm.inx(DE)                     # swap the pair
    asm.stax(DE)                    # mem[j] = old arr[j-1]
    asm.dcx(DE)
    asm.mov(A, B)
    asm.stax(DE)                    # mem[j-1] = old arr[j]
    asm.mov(A, E)                   # j == 0 <=> DE == ARR
    asm.cpi(ARR & 0xFF)
    asm.jnz("inner")
    asm.label("placed")
    asm.inx(HL)
    asm.dcr(C)
    asm.jnz("outer")
    asm.hlt()

    return I8080Kernel(
        name="inSort",
        code=asm.assemble(),
        loader=lambda cpu: _poke(cpu, ARR, values),
        reader=lambda cpu: {
            "sorted": list(cpu.memory[ARR : ARR + ARRAY_ELEMENTS])
        },
        z80=z80,
    )


def insort16(values: list[int] | None = None, z80: bool = False) -> I8080Kernel:
    """Insertion sort of 16 *16-bit* little-endian elements at ARR.

    The configuration behind the paper's Section 8 observation that
    16-bit insertion sort takes the 8-bit machines over 1000 seconds:
    every compare is a two-byte subtract chain and every swap moves
    four bytes through the accumulator.
    """
    values = (
        deterministic_values(seed=0x59, count=ARRAY_ELEMENTS, bits=16)
        if values is None
        else values
    )
    t_lo, t_hi = DATA, DATA + 1  # scratch copy of arr[j]

    asm = Asm8080(z80)
    asm.mvi(C, ARRAY_ELEMENTS - 1)
    asm.lxi(HL, ARR + 2)               # HL = &arr[i] (low byte)
    asm.label("outer")
    asm.mov(D, H)                      # DE = &lo[j]
    asm.mov(E, L)
    asm.label("inner")
    asm.ldax(DE)                       # T = arr[j]
    asm.sta(t_lo)
    asm.inx(DE)
    asm.ldax(DE)
    asm.sta(t_hi)
    asm.dcx(DE)
    asm.dcx(DE)
    asm.dcx(DE)                        # DE = &lo[j-1]
    asm.ldax(DE)
    asm.mov(B, A)                      # B = lo[j-1]
    asm.lda(t_lo)
    asm.sub(B)                         # lo[j] - lo[j-1]
    asm.inx(DE)                        # DE = &hi[j-1]
    asm.ldax(DE)
    asm.mov(B, A)                      # B = hi[j-1]
    asm.lda(t_hi)
    asm.sbb(B)                         # CY set: arr[j] < arr[j-1]
    asm.jnc("placed")
    # Swap.  DE = &hi[j-1]; B = hi[j-1]; T holds arr[j].
    asm.inx(DE)
    asm.inx(DE)                        # DE = &hi[j]
    asm.mov(A, B)
    asm.stax(DE)                       # hi[j] = hi[j-1]
    asm.dcx(DE)
    asm.dcx(DE)
    asm.dcx(DE)                        # DE = &lo[j-1]
    asm.ldax(DE)
    asm.mov(B, A)                      # B = lo[j-1]
    asm.inx(DE)
    asm.inx(DE)                        # DE = &lo[j]
    asm.mov(A, B)
    asm.stax(DE)                       # lo[j] = lo[j-1]
    asm.dcx(DE)
    asm.dcx(DE)                        # DE = &lo[j-1]
    asm.lda(t_lo)
    asm.stax(DE)                       # lo[j-1] = old lo[j]
    asm.inx(DE)
    asm.lda(t_hi)
    asm.stax(DE)                       # hi[j-1] = old hi[j]
    asm.dcx(DE)                        # DE = &lo[j-1] = new &lo[j]
    asm.mov(A, E)                      # j == 0 <=> DE == ARR
    asm.cpi(ARR & 0xFF)
    asm.jnz("inner")
    asm.label("placed")
    asm.inx(HL)
    asm.inx(HL)
    asm.dcr(C)
    asm.jnz("outer")
    asm.hlt()

    def read(cpu: I8080) -> dict:
        return {
            "sorted": [
                cpu.memory[ARR + 2 * k] | (cpu.memory[ARR + 2 * k + 1] << 8)
                for k in range(ARRAY_ELEMENTS)
            ]
        }

    def load(cpu: I8080) -> None:
        for index, value in enumerate(values):
            cpu.memory[ARR + 2 * index] = value & 0xFF
            cpu.memory[ARR + 2 * index + 1] = (value >> 8) & 0xFF

    return I8080Kernel(
        name="inSort16", code=asm.assemble(), loader=load, reader=read, z80=z80
    )


def intavg8(values: list[int] | None = None, z80: bool = False) -> I8080Kernel:
    """Average of 16 bytes (16-bit accumulator, exact) at DATA."""
    values = (
        deterministic_values(seed=0xA9, count=ARRAY_ELEMENTS, bits=8)
        if values is None
        else values
    )

    asm = Asm8080(z80)
    asm.lxi(DE, ARR)
    asm.mvi(B, ARRAY_ELEMENTS)
    asm.lxi(HL, 0)                  # HL = 16-bit sum
    asm.label("loop")
    asm.ldax(DE)
    asm.add(L)
    asm.mov(L, A)
    asm.jnc("no_carry")
    asm.inr(H)
    asm.label("no_carry")
    asm.inx(DE)
    asm.dcr(B)
    asm.jnz("loop")
    # avg = (H << 4) | (L >> 4)
    asm.mov(A, L)
    for _ in range(4):
        asm.rrc()
    asm.ani(0x0F)
    asm.mov(E, A)
    asm.mov(A, H)
    for _ in range(4):
        asm.rlc()
    asm.ani(0xF0)
    asm.ora(E)
    asm.sta(DATA)
    asm.hlt()

    return I8080Kernel(
        name="intAvg",
        code=asm.assemble(),
        loader=lambda cpu: _poke(cpu, ARR, values),
        reader=lambda cpu: {"avg": cpu.memory[DATA]},
        z80=z80,
    )


def thold8(
    values: list[int] | None = None,
    threshold: int | None = None,
    z80: bool = False,
) -> I8080Kernel:
    """Count of the 16 bytes at ARR that are >= the threshold."""
    values = (
        deterministic_values(seed=0x78, count=ARRAY_ELEMENTS, bits=8)
        if values is None
        else values
    )
    threshold = 0x80 if threshold is None else threshold

    asm = Asm8080(z80)
    asm.lda(DATA)                  # threshold
    asm.mov(L, A)
    asm.lxi(DE, ARR)
    asm.mvi(B, ARRAY_ELEMENTS)
    asm.mvi(C, 0)
    asm.label("loop")
    asm.ldax(DE)
    asm.cmp(L)                     # CY set when element < threshold
    asm.jc("skip")
    asm.inr(C)
    asm.label("skip")
    asm.inx(DE)
    asm.dcr(B)
    asm.jnz("loop")
    asm.mov(A, C)
    asm.sta(DATA + 1)
    asm.hlt()

    return I8080Kernel(
        name="tHold",
        code=asm.assemble(),
        loader=lambda cpu: _poke(cpu, DATA, [threshold]) or _poke(cpu, ARR, values),
        reader=lambda cpu: {"count": cpu.memory[DATA + 1]},
        z80=z80,
    )


def crc8_16(stream: list[int] | None = None, z80: bool = False) -> I8080Kernel:
    """CRC-8/ATM over the 16 bytes at ARR; checksum at DATA."""
    stream = crc8_kernel.default_inputs() if stream is None else stream

    asm = Asm8080(z80)
    asm.lxi(DE, ARR)
    asm.mvi(B, len(stream))
    asm.mvi(C, 0)                  # crc
    asm.label("byte")
    asm.ldax(DE)
    asm.xra(C)
    asm.mov(C, A)
    asm.mvi(L, 8)
    asm.label("bit")
    asm.mov(A, C)
    asm.add(A)                     # crc <<= 1, CY = old MSB
    asm.mov(C, A)
    asm.jnc("no_poly")
    asm.mov(A, C)
    asm.xri(crc8_kernel.POLYNOMIAL)
    asm.mov(C, A)
    asm.label("no_poly")
    asm.dcr(L)
    asm.jnz("bit")
    asm.inx(DE)
    asm.dcr(B)
    asm.jnz("byte")
    asm.mov(A, C)
    asm.sta(DATA)
    asm.hlt()

    return I8080Kernel(
        name="crc8",
        code=asm.assemble(),
        loader=lambda cpu: _poke(cpu, ARR, stream),
        reader=lambda cpu: {"crc": cpu.memory[DATA]},
        z80=z80,
    )


def dtree8(inputs: list[int] | None = None, z80: bool = False) -> I8080Kernel:
    """The same deterministic 50-node decision tree as the TP-ISA
    kernel, with thresholds hard-coded as CPI immediates."""
    inputs = dtree_kernel.default_inputs(8) if inputs is None else inputs
    tree = dtree_kernel._build_tree(dtree_kernel.INTERNAL_NODES)

    asm = Asm8080(z80)

    def emit(node) -> None:
        if node.is_leaf:
            asm.mvi(A, node.leaf_class)
            asm.sta(DATA)
            asm.jmp("end")
            return
        asm.lda(ARR + node.feature)
        asm.cpi(node.threshold)
        asm.jnc(f"right_{node.index}")  # input >= threshold -> right
        emit(node.left)
        asm.label(f"right_{node.index}")
        emit(node.right)

    emit(tree)
    asm.label("end")
    asm.hlt()

    return I8080Kernel(
        name="dTree",
        code=asm.assemble(),
        loader=lambda cpu: _poke(cpu, ARR, inputs),
        reader=lambda cpu: {"result": cpu.memory[DATA]},
        z80=z80,
    )


#: Builder registry for the aggregation layer.
I8080_KERNELS: dict[str, Callable[..., I8080Kernel]] = {
    "mult": mult8,
    "div": div8,
    "inSort": insort8,
    "inSort16": insort16,
    "intAvg": intavg8,
    "tHold": thold8,
    "crc8": crc8_16,
    "dTree": dtree8,
}
