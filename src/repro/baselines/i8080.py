"""Intel 8080 / Zilog Z80 functional simulator and code builder.

Models the two accumulator-machine baselines (light8080 is a low gate
count 8080 implementation; the Z80 executes an enhanced 8080 ISA).
The simulator is cycle-accurate at the T-state level using the
documented instruction timings, which is what turns our hand-written
benchmark kernels into the Section 8 execution-time and energy numbers
(a microcoded core spends one synthesized clock per T-state, matching
the published CPI ranges of 5-30 for light8080 and 3-23 for Z80).

Only the instruction subset the benchmark kernels need is implemented;
unknown opcodes raise, so coverage gaps are loud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblerError, SimulationError

# Register codes (8080 encoding order).
B, C, D, E, H, L, M, A = range(8)
REG_NAMES = "B C D E H L M A".split()

# Register-pair codes.
BC, DE, HL, SP = range(4)

# Flag bit positions (8080 PSW layout).
FLAG_S = 0x80
FLAG_Z = 0x40
FLAG_P = 0x04
FLAG_CY = 0x01


@dataclass
class CpuStats:
    """Dynamic execution statistics."""

    instructions: int = 0
    t_states: int = 0
    memory_reads: int = 0
    memory_writes: int = 0


class I8080:
    """Functional 8080 simulator with T-state accounting.

    Args:
        code: Program bytes, loaded at address 0.
        memory_size: Total address space to model.
        z80_timing: Use Z80 machine-cycle counts (and enable the Z80
            extension opcodes DJNZ / JR).
    """

    def __init__(self, code: bytes, memory_size: int = 4096, z80_timing: bool = False) -> None:
        if len(code) > memory_size:
            raise SimulationError("program does not fit in memory")
        self.memory = bytearray(memory_size)
        self.memory[: len(code)] = code
        self.code_size = len(code)
        self.z80 = z80_timing
        self.regs = [0] * 8  # index M unused
        self.pc = 0
        self.sp = memory_size - 2
        self.flags = 0
        self.halted = False
        self.stats = CpuStats()

    # -- helpers -----------------------------------------------------------

    def _read(self, address: int) -> int:
        self.stats.memory_reads += 1
        return self.memory[address & 0xFFFF]

    def _write(self, address: int, value: int) -> None:
        self.stats.memory_writes += 1
        self.memory[address & 0xFFFF] = value & 0xFF

    def reg_get(self, code: int) -> int:
        if code == M:
            return self._read(self.hl)
        return self.regs[code]

    def reg_set(self, code: int, value: int) -> None:
        if code == M:
            self._write(self.hl, value)
        else:
            self.regs[code] = value & 0xFF

    @property
    def hl(self) -> int:
        return (self.regs[H] << 8) | self.regs[L]

    def pair_get(self, pair: int) -> int:
        if pair == BC:
            return (self.regs[B] << 8) | self.regs[C]
        if pair == DE:
            return (self.regs[D] << 8) | self.regs[E]
        if pair == HL:
            return self.hl
        return self.sp

    def pair_set(self, pair: int, value: int) -> None:
        value &= 0xFFFF
        if pair == BC:
            self.regs[B], self.regs[C] = value >> 8, value & 0xFF
        elif pair == DE:
            self.regs[D], self.regs[E] = value >> 8, value & 0xFF
        elif pair == HL:
            self.regs[H], self.regs[L] = value >> 8, value & 0xFF
        else:
            self.sp = value

    def _set_zsp(self, value: int) -> None:
        self.flags &= ~(FLAG_S | FLAG_Z | FLAG_P)
        if value & 0x80:
            self.flags |= FLAG_S
        if value == 0:
            self.flags |= FLAG_Z
        if bin(value).count("1") % 2 == 0:
            self.flags |= FLAG_P

    def _arith(self, operand: int, subtract: bool, with_carry: bool, store: bool = True) -> None:
        carry_in = (self.flags & FLAG_CY) if with_carry else 0
        if subtract:
            total = self.regs[A] - operand - carry_in
            carry_out = total < 0
        else:
            total = self.regs[A] + operand + carry_in
            carry_out = total > 0xFF
        result = total & 0xFF
        self._set_zsp(result)
        self.flags = (self.flags | FLAG_CY) if carry_out else (self.flags & ~FLAG_CY)
        if store:
            self.regs[A] = result

    def _logic(self, operand: int, op: str) -> None:
        if op == "and":
            self.regs[A] &= operand
        elif op == "or":
            self.regs[A] |= operand
        else:
            self.regs[A] ^= operand
        self._set_zsp(self.regs[A])
        self.flags &= ~FLAG_CY

    def _condition(self, code: int) -> bool:
        flag, wanted = [
            (FLAG_Z, 0), (FLAG_Z, 1), (FLAG_CY, 0), (FLAG_CY, 1),
            (FLAG_P, 0), (FLAG_P, 1), (FLAG_S, 0), (FLAG_S, 1),
        ][code]
        return bool(self.flags & flag) == bool(wanted)

    def _fetch(self) -> int:
        value = self.memory[self.pc]
        self.pc = (self.pc + 1) & 0xFFFF
        return value

    def _fetch16(self) -> int:
        low = self._fetch()
        return low | (self._fetch() << 8)

    def _t(self, i8080_states: int, z80_states: int | None = None) -> None:
        self.stats.t_states += (
            z80_states if (self.z80 and z80_states is not None) else i8080_states
        )

    # -- execution --------------------------------------------------------------

    def step(self) -> None:  # noqa: C901 - opcode dispatch is a big switch
        if self.halted:
            return
        self.stats.instructions += 1
        opcode = self._fetch()

        if opcode == 0x76:  # HLT
            self.halted = True
            self._t(7, 4)
        elif opcode & 0xC0 == 0x40:  # MOV r,r
            dst, src = (opcode >> 3) & 7, opcode & 7
            self.reg_set(dst, self.reg_get(src))
            self._t(7 if M in (dst, src) else 5, 7 if M in (dst, src) else 4)
        elif opcode & 0xC7 == 0x06:  # MVI r,imm
            dst = (opcode >> 3) & 7
            self.reg_set(dst, self._fetch())
            self._t(10 if dst == M else 7)
        elif opcode & 0xCF == 0x01:  # LXI rp,imm16
            self.pair_set((opcode >> 4) & 3, self._fetch16())
            self._t(10)
        elif opcode == 0x3A:  # LDA a16
            self.regs[A] = self._read(self._fetch16())
            self._t(13)
        elif opcode == 0x32:  # STA a16
            self._write(self._fetch16(), self.regs[A])
            self._t(13)
        elif opcode in (0x0A, 0x1A):  # LDAX B/D
            self.regs[A] = self._read(self.pair_get((opcode >> 4) & 3))
            self._t(7)
        elif opcode in (0x02, 0x12):  # STAX B/D
            self._write(self.pair_get((opcode >> 4) & 3), self.regs[A])
            self._t(7)
        elif opcode & 0xC7 == 0x04:  # INR r
            dst = (opcode >> 3) & 7
            value = (self.reg_get(dst) + 1) & 0xFF
            self.reg_set(dst, value)
            self._set_zsp(value)
            self._t(10 if dst == M else 5, 11 if dst == M else 4)
        elif opcode & 0xC7 == 0x05:  # DCR r
            dst = (opcode >> 3) & 7
            value = (self.reg_get(dst) - 1) & 0xFF
            self.reg_set(dst, value)
            self._set_zsp(value)
            self._t(10 if dst == M else 5, 11 if dst == M else 4)
        elif opcode & 0xCF == 0x03:  # INX rp
            pair = (opcode >> 4) & 3
            self.pair_set(pair, self.pair_get(pair) + 1)
            self._t(5, 6)
        elif opcode & 0xCF == 0x0B:  # DCX rp
            pair = (opcode >> 4) & 3
            self.pair_set(pair, self.pair_get(pair) - 1)
            self._t(5, 6)
        elif opcode & 0xCF == 0x09:  # DAD rp
            total = self.hl + self.pair_get((opcode >> 4) & 3)
            self.flags = (self.flags | FLAG_CY) if total > 0xFFFF else (self.flags & ~FLAG_CY)
            self.pair_set(HL, total)
            self._t(10, 11)
        elif opcode & 0xC0 == 0x80:  # arithmetic/logic on register
            src = opcode & 7
            operand = self.reg_get(src)
            group = (opcode >> 3) & 7
            self._dispatch_alu(group, operand)
            self._t(7 if src == M else 4)
        elif opcode & 0xC7 == 0xC6:  # immediate arithmetic/logic
            self._dispatch_alu((opcode >> 3) & 7, self._fetch())
            self._t(7)
        elif opcode == 0x07:  # RLC
            a = self.regs[A]
            carry = a >> 7
            self.regs[A] = ((a << 1) | carry) & 0xFF
            self.flags = (self.flags | FLAG_CY) if carry else (self.flags & ~FLAG_CY)
            self._t(4)
        elif opcode == 0x0F:  # RRC
            a = self.regs[A]
            carry = a & 1
            self.regs[A] = (a >> 1) | (carry << 7)
            self.flags = (self.flags | FLAG_CY) if carry else (self.flags & ~FLAG_CY)
            self._t(4)
        elif opcode == 0x17:  # RAL
            a = self.regs[A]
            carry_in = self.flags & FLAG_CY
            carry = a >> 7
            self.regs[A] = ((a << 1) | carry_in) & 0xFF
            self.flags = (self.flags | FLAG_CY) if carry else (self.flags & ~FLAG_CY)
            self._t(4)
        elif opcode == 0x1F:  # RAR
            a = self.regs[A]
            carry_in = (self.flags & FLAG_CY) << 7
            carry = a & 1
            self.regs[A] = (a >> 1) | carry_in
            self.flags = (self.flags | FLAG_CY) if carry else (self.flags & ~FLAG_CY)
            self._t(4)
        elif opcode == 0xC3:  # JMP
            self.pc = self._fetch16()
            self._t(10)
        elif opcode & 0xC7 == 0xC2:  # conditional jump
            target = self._fetch16()
            if self._condition((opcode >> 3) & 7):
                self.pc = target
            self._t(10)
        elif opcode == 0xCD:  # CALL
            target = self._fetch16()
            self._push16(self.pc)
            self.pc = target
            self._t(17)
        elif opcode == 0xC9:  # RET
            self.pc = self._pop16()
            self._t(10)
        elif opcode & 0xCF == 0xC5:  # PUSH rp (PSW unsupported)
            self._push16(self.pair_get((opcode >> 4) & 3))
            self._t(11)
        elif opcode & 0xCF == 0xC1:  # POP rp
            self.pair_set((opcode >> 4) & 3, self._pop16())
            self._t(10)
        elif opcode == 0xEB:  # XCHG
            de, hl = self.pair_get(DE), self.pair_get(HL)
            self.pair_set(DE, hl)
            self.pair_set(HL, de)
            self._t(5, 4)
        elif opcode == 0x10 and self.z80:  # DJNZ rel
            offset = self._fetch()
            self.regs[B] = (self.regs[B] - 1) & 0xFF
            if self.regs[B]:
                self.pc = (self.pc + _signed(offset)) & 0xFFFF
                self._t(13)
            else:
                self._t(8)
        elif opcode == 0x18 and self.z80:  # JR rel
            offset = self._fetch()
            self.pc = (self.pc + _signed(offset)) & 0xFFFF
            self._t(12)
        elif opcode & 0xE7 == 0x20 and self.z80:  # JR cc,rel
            offset = self._fetch()
            if self._condition((opcode >> 3) & 3):
                self.pc = (self.pc + _signed(offset)) & 0xFFFF
                self._t(12)
            else:
                self._t(7)
        elif opcode == 0x00:  # NOP
            self._t(4)
        else:
            raise SimulationError(f"unimplemented opcode {opcode:#04x} at {self.pc - 1:#06x}")

    def _dispatch_alu(self, group: int, operand: int) -> None:
        if group == 0:
            self._arith(operand, subtract=False, with_carry=False)
        elif group == 1:
            self._arith(operand, subtract=False, with_carry=True)
        elif group == 2:
            self._arith(operand, subtract=True, with_carry=False)
        elif group == 3:
            self._arith(operand, subtract=True, with_carry=True)
        elif group == 4:
            self._logic(operand, "and")
        elif group == 5:
            self._logic(operand, "xor")
        elif group == 6:
            self._logic(operand, "or")
        else:  # CMP
            self._arith(operand, subtract=True, with_carry=False, store=False)

    def _push16(self, value: int) -> None:
        self.sp = (self.sp - 2) & 0xFFFF
        self._write(self.sp, value & 0xFF)
        self._write(self.sp + 1, value >> 8)

    def _pop16(self) -> int:
        low = self._read(self.sp)
        high = self._read(self.sp + 1)
        self.sp = (self.sp + 2) & 0xFFFF
        return low | (high << 8)

    def run(self, max_steps: int = 2_000_000) -> CpuStats:
        """Run until HLT; raises on runaway."""
        for _ in range(max_steps):
            if self.halted:
                return self.stats
            self.step()
        raise SimulationError("8080 program did not halt")


def _signed(byte: int) -> int:
    return byte - 256 if byte & 0x80 else byte


# -- code builder ---------------------------------------------------------------


class Asm8080:
    """Tiny 8080/Z80 code builder with label fixups.

    Emits raw bytes; data lives at fixed absolute addresses chosen by
    the kernel (above the code, below the stack).
    """

    def __init__(self, z80: bool = False) -> None:
        self.code = bytearray()
        self.z80 = z80
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []      # absolute 16-bit
        self._rel_fixups: list[tuple[int, str]] = []  # Z80 relative

    # labels ------------------------------------------------------------

    def label(self, name: str) -> None:
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = len(self.code)

    def _abs(self, target: str) -> None:
        self._fixups.append((len(self.code), target))
        self.code += b"\x00\x00"

    # data movement ------------------------------------------------------------

    def mvi(self, reg: int, value: int) -> None:
        self.code += bytes([0x06 | (reg << 3), value & 0xFF])

    def mov(self, dst: int, src: int) -> None:
        self.code.append(0x40 | (dst << 3) | src)

    def lxi(self, pair: int, value: int) -> None:
        self.code += bytes([0x01 | (pair << 4), value & 0xFF, value >> 8])

    def lda(self, address: int) -> None:
        self.code += bytes([0x3A, address & 0xFF, address >> 8])

    def sta(self, address: int) -> None:
        self.code += bytes([0x32, address & 0xFF, address >> 8])

    def ldax(self, pair: int) -> None:
        self.code.append(0x0A | (pair << 4))

    def stax(self, pair: int) -> None:
        self.code.append(0x02 | (pair << 4))

    def xchg(self) -> None:
        self.code.append(0xEB)

    # arithmetic ------------------------------------------------------------------

    def inr(self, reg: int) -> None:
        self.code.append(0x04 | (reg << 3))

    def dcr(self, reg: int) -> None:
        self.code.append(0x05 | (reg << 3))

    def inx(self, pair: int) -> None:
        self.code.append(0x03 | (pair << 4))

    def dcx(self, pair: int) -> None:
        self.code.append(0x0B | (pair << 4))

    def dad(self, pair: int) -> None:
        self.code.append(0x09 | (pair << 4))

    def alu(self, group: int, reg: int) -> None:
        self.code.append(0x80 | (group << 3) | reg)

    def add(self, reg: int) -> None:
        self.alu(0, reg)

    def adc(self, reg: int) -> None:
        self.alu(1, reg)

    def sub(self, reg: int) -> None:
        self.alu(2, reg)

    def sbb(self, reg: int) -> None:
        self.alu(3, reg)

    def ana(self, reg: int) -> None:
        self.alu(4, reg)

    def xra(self, reg: int) -> None:
        self.alu(5, reg)

    def ora(self, reg: int) -> None:
        self.alu(6, reg)

    def cmp(self, reg: int) -> None:
        self.alu(7, reg)

    def alu_imm(self, group: int, value: int) -> None:
        self.code += bytes([0xC6 | (group << 3), value & 0xFF])

    def adi(self, value: int) -> None:
        self.alu_imm(0, value)

    def sui(self, value: int) -> None:
        self.alu_imm(2, value)

    def ani(self, value: int) -> None:
        self.alu_imm(4, value)

    def xri(self, value: int) -> None:
        self.alu_imm(5, value)

    def cpi(self, value: int) -> None:
        self.alu_imm(7, value)

    def rlc(self) -> None:
        self.code.append(0x07)

    def rrc(self) -> None:
        self.code.append(0x0F)

    def ral(self) -> None:
        self.code.append(0x17)

    def rar(self) -> None:
        self.code.append(0x1F)

    # control flow ------------------------------------------------------------------

    def jmp(self, target: str) -> None:
        self.code.append(0xC3)
        self._abs(target)

    def jcond(self, condition: int, target: str) -> None:
        self.code.append(0xC2 | (condition << 3))
        self._abs(target)

    def jnz(self, target: str) -> None:
        self.jcond(0, target)

    def jz(self, target: str) -> None:
        self.jcond(1, target)

    def jnc(self, target: str) -> None:
        self.jcond(2, target)

    def jc(self, target: str) -> None:
        self.jcond(3, target)

    def djnz(self, target: str) -> None:
        if not self.z80:
            raise AssemblerError("DJNZ is a Z80 instruction")
        self.code.append(0x10)
        self._rel_fixups.append((len(self.code), target))
        self.code.append(0)

    def hlt(self) -> None:
        self.code.append(0x76)

    # finalize ----------------------------------------------------------------------

    def assemble(self) -> bytes:
        for position, target in self._fixups:
            if target not in self._labels:
                raise AssemblerError(f"undefined label {target!r}")
            address = self._labels[target]
            self.code[position] = address & 0xFF
            self.code[position + 1] = address >> 8
        for position, target in self._rel_fixups:
            if target not in self._labels:
                raise AssemblerError(f"undefined label {target!r}")
            offset = self._labels[target] - (position + 1)
            if not -128 <= offset <= 127:
                raise AssemblerError(f"relative jump to {target!r} out of range")
            self.code[position] = offset & 0xFF
        return bytes(self.code)
