"""Baseline microprocessor models (Section 4).

The paper characterizes four pre-existing ultra-low-power cores --
openMSP430, Z80, light8080, and ZPU -- as the yardstick TP-ISA must
beat.  This package provides:

* :mod:`repro.baselines.specs` -- the published Table 4
  characterization (gate counts, fmax, area, power per technology),
  treated as inputs;
* :mod:`repro.baselines.model` -- a structural cross-check deriving
  area/power from gate counts through the same cell-library math used
  for TP-ISA cores;
* functional instruction-set simulators with cycle-accurate timing and
  code builders for each baseline ISA (:mod:`repro.baselines.i8080`,
  :mod:`repro.baselines.zpu`, :mod:`repro.baselines.msp430`);
* :mod:`repro.baselines.kernels` -- the seven paper benchmarks written
  for each baseline ISA, supplying Table 5's static code sizes and
  Section 8's execution-time/energy comparisons.
"""

from repro.baselines.specs import BASELINE_SPECS, BaselineSpec
from repro.baselines.model import structural_report, StructuralReport

__all__ = [
    "BASELINE_SPECS",
    "BaselineSpec",
    "structural_report",
    "StructuralReport",
]
