"""Zylin ZPU (zpu_small) functional simulator and code builder.

The ZPU is the paper's stack-machine baseline: 32-bit data, 1-byte
instructions, everything through an in-memory stack -- which is exactly
why the paper rejects stack ISAs for printed cores (the stack forces a
RAM-based implementation, and RAM is 16.8x bigger than ROM per bit).

zpu_small executes at a flat CPI of 4 (Table 4), so cycle accounting
is ``4 x dynamic instructions``.  The hardware opcodes are implemented
directly; the EMULATE group (compare, subtract, shifts, conditional
branch) is executed natively but *charged* an emulation factor, since
the real zpu_small traps to a software microcode sequence -- the
factor defaults to the documented ~34-instruction average trap cost.

Word size is 32 bits; memory is byte-addressed with word-aligned
LOAD/STORE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblerError, SimulationError

#: Published CPI of zpu_small (Table 4).
CPI = 4

#: Average dynamic instruction cost of one EMULATE trap (microcode
#: entry, operation, and return), per the zpu_small emulation ROM.
EMULATE_COST = 34

# Hardware opcodes.
OP_PUSHSP = 0x02
OP_POPPC = 0x04
OP_ADD = 0x05
OP_AND = 0x06
OP_OR = 0x07
OP_LOAD = 0x08
OP_NOT = 0x09
OP_FLIP = 0x0A
OP_NOP = 0x0B
OP_STORE = 0x0C
OP_POPSP = 0x0D

# EMULATE vectors (opcode byte = vector number, ZPU ISA numbering).
OP_LESSTHAN = 36
OP_ULESSTHAN = 38
OP_LSHIFTRIGHT = 42
OP_EQ = 46
OP_SUB = 49
OP_XOR = 50
OP_NEQBRANCH = 56

_EMULATE_RANGE = range(32, 64)

MASK32 = 0xFFFFFFFF


@dataclass
class ZpuStats:
    """Dynamic statistics: fetched instructions include trap costs."""

    instructions: int = 0
    emulated: int = 0
    memory_reads: int = 0
    memory_writes: int = 0

    @property
    def effective_instructions(self) -> int:
        """Instruction stream length including emulation traps."""
        return self.instructions + self.emulated * (EMULATE_COST - 1)

    @property
    def cycles(self) -> int:
        return self.effective_instructions * CPI


class Zpu:
    """Functional ZPU simulator.

    Args:
        code: Program bytes at address 0.
        memory_size: Byte-addressable memory size (word aligned).
    """

    def __init__(self, code: bytes, memory_size: int = 8192) -> None:
        if len(code) > memory_size:
            raise SimulationError("program does not fit in memory")
        self.memory = bytearray(memory_size)
        self.memory[: len(code)] = code
        self.pc = 0
        self.sp = memory_size - 8
        self.halted = False
        self.stats = ZpuStats()
        self._im_pending = False

    # -- stack/memory ------------------------------------------------------

    def _load_word(self, address: int) -> int:
        address &= ~3
        self.stats.memory_reads += 1
        return int.from_bytes(self.memory[address : address + 4], "big")

    def _store_word(self, address: int, value: int) -> None:
        address &= ~3
        self.stats.memory_writes += 1
        self.memory[address : address + 4] = (value & MASK32).to_bytes(4, "big")

    def push(self, value: int) -> None:
        self.sp -= 4
        self._store_word(self.sp, value)

    def pop(self) -> int:
        value = self._load_word(self.sp)
        self.sp += 4
        return value

    @property
    def tos(self) -> int:
        return self._load_word(self.sp)

    # -- execution ------------------------------------------------------------

    def step(self) -> None:  # noqa: C901 - opcode dispatch
        if self.halted:
            return
        opcode = self.memory[self.pc]
        self.stats.instructions += 1
        next_pc = self.pc + 1
        im_this = False

        if opcode & 0x80:  # IM
            value = opcode & 0x7F
            if self._im_pending:
                self.push(((self.pop() << 7) | value) & MASK32)
            else:
                if value & 0x40:  # sign extend first IM
                    value |= ~0x7F & MASK32
                self.push(value)
            im_this = True
        elif opcode == 0:  # BREAKPOINT: used as HALT
            self.halted = True
        elif opcode == OP_NOP:
            pass
        elif opcode == OP_PUSHSP:
            self.push(self.sp)
        elif opcode == OP_POPSP:
            self.sp = self.pop()
        elif opcode == OP_POPPC:
            next_pc = self.pop()
        elif opcode == OP_ADD:
            self.push((self.pop() + self.pop()) & MASK32)
        elif opcode == OP_AND:
            self.push(self.pop() & self.pop())
        elif opcode == OP_OR:
            self.push(self.pop() | self.pop())
        elif opcode == OP_NOT:
            self.push(~self.pop() & MASK32)
        elif opcode == OP_FLIP:
            self.push(int(f"{self.pop() & MASK32:032b}"[::-1], 2))
        elif opcode == OP_LOAD:
            self.push(self._load_word(self.pop()))
        elif opcode == OP_STORE:
            address = self.pop()
            self._store_word(address, self.pop())
        elif 0x10 <= opcode <= 0x1F:  # ADDSP x
            offset = (opcode & 0x0F) * 4
            self.push((self.pop() + self._load_word(self.sp + offset - 4)) & MASK32)
        elif 0x60 <= opcode <= 0x7F:  # LOADSP x
            offset = (opcode & 0x1F) * 4
            self.push(self._load_word(self.sp + offset))
        elif 0x40 <= opcode <= 0x5F:  # STORESP x
            offset = (opcode & 0x1F) * 4
            value = self.pop()
            self._store_word(self.sp + offset - 4, value)
        elif opcode in _EMULATE_RANGE:
            self.stats.emulated += 1
            next_pc = self._emulate(opcode, next_pc)
        else:
            raise SimulationError(f"unimplemented ZPU opcode {opcode:#04x}")

        self._im_pending = im_this
        self.pc = next_pc

    def _emulate(self, opcode: int, next_pc: int) -> int:
        if opcode == OP_SUB:
            b, a = self.pop(), self.pop()
            self.push((a - b) & MASK32)
        elif opcode == OP_XOR:
            self.push(self.pop() ^ self.pop())
        elif opcode == OP_EQ:
            self.push(1 if self.pop() == self.pop() else 0)
        elif opcode == OP_LESSTHAN:
            b, a = _signed32(self.pop()), _signed32(self.pop())
            self.push(1 if a < b else 0)
        elif opcode == OP_ULESSTHAN:
            b, a = self.pop(), self.pop()
            self.push(1 if a < b else 0)
        elif opcode == OP_LSHIFTRIGHT:
            b, a = self.pop(), self.pop()
            self.push((a >> (b & 31)) & MASK32)
        elif opcode == OP_NEQBRANCH:
            offset, condition = self.pop(), self.pop()
            if condition != 0:
                return (self.pc + _signed32(offset)) & MASK32
        else:
            raise SimulationError(f"unimplemented EMULATE vector {opcode}")
        return next_pc

    def run(self, max_steps: int = 2_000_000) -> ZpuStats:
        """Run until BREAKPOINT; raises on runaway."""
        for _ in range(max_steps):
            if self.halted:
                return self.stats
            self.step()
        raise SimulationError("ZPU program did not halt")


def _signed32(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


# -- code builder ---------------------------------------------------------------


class AsmZpu:
    """ZPU code builder: IM chaining, label fixups for NEQBRANCH/POPPC."""

    def __init__(self) -> None:
        self.code = bytearray()
        self._labels: dict[str, int] = {}
        self._branch_fixups: list[tuple[int, str]] = []

    def label(self, name: str) -> None:
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = len(self.code)

    def _break_im_chain(self) -> None:
        """Insert a NOP when the previous byte is an IM, so a new IM
        sequence starts a fresh push instead of chaining."""
        if self.code and self.code[-1] & 0x80:
            self.nop()

    def im(self, value: int) -> None:
        """Push a constant via chained IM bytes."""
        self._break_im_chain()
        value &= MASK32
        signed = value - (1 << 32) if value & 0x80000000 else value
        chunks = []
        while True:
            chunks.append(signed & 0x7F)
            signed >>= 7
            if signed in (0, -1) and (
                (signed == 0 and not chunks[-1] & 0x40)
                or (signed == -1 and chunks[-1] & 0x40)
            ):
                break
        for chunk in reversed(chunks):
            self.code.append(0x80 | chunk)
        # Break IM chaining for a following constant.

    def op(self, opcode: int) -> None:
        self.code.append(opcode)

    def nop(self) -> None:
        self.op(OP_NOP)

    def load(self) -> None:
        self.op(OP_LOAD)

    def store(self) -> None:
        self.op(OP_STORE)

    def add(self) -> None:
        self.op(OP_ADD)

    def sub(self) -> None:
        self.op(OP_SUB)

    def and_(self) -> None:
        self.op(OP_AND)

    def or_(self) -> None:
        self.op(OP_OR)

    def xor(self) -> None:
        self.op(OP_XOR)

    def not_(self) -> None:
        self.op(OP_NOT)

    def eq(self) -> None:
        self.op(OP_EQ)

    def ulessthan(self) -> None:
        self.op(OP_ULESSTHAN)

    def lshiftright(self) -> None:
        self.op(OP_LSHIFTRIGHT)

    def loadsp(self, slot: int) -> None:
        self.op(0x60 | slot)

    def storesp(self, slot: int) -> None:
        self.op(0x40 | slot)

    def halt(self) -> None:
        self.op(0x00)

    def neqbranch(self, target: str) -> None:
        """Pop condition; branch to ``target`` when nonzero.

        Emitted as ``IM <offset> NEQBRANCH`` with a 2-byte IM
        reservation patched at assembly time.
        """
        self._break_im_chain()
        self._branch_fixups.append((len(self.code), target))
        self.code += bytes([0x80, 0x80, OP_NEQBRANCH])

    def branch(self, target: str) -> None:
        """Unconditional branch: push 1, then NEQBRANCH."""
        self.im(1)
        self.neqbranch(target)

    def assemble(self) -> bytes:
        for position, target in self._branch_fixups:
            if target not in self._labels:
                raise AssemblerError(f"undefined label {target!r}")
            # Offset is relative to the NEQBRANCH instruction itself.
            offset = self._labels[target] - (position + 2)
            if not -8192 <= offset < 8192:
                raise AssemblerError(f"branch to {target!r} out of IM2 range")
            self.code[position] = 0x80 | ((offset >> 7) & 0x7F)
            self.code[position + 1] = 0x80 | (offset & 0x7F)
        return bytes(self.code)
