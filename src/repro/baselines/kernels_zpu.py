"""The seven paper benchmarks for the ZPU stack machine.

Everything flows through the in-memory stack: each variable access is
an ``IM addr / LOAD`` (or ``.. / STORE``) sequence, which is why ZPU
code is compact per instruction but extremely memory-traffic-heavy --
the property that makes stack ISAs a poor fit for printed RAM.

Variables live at fixed word addresses; arrays hold one value per
32-bit word.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines.zpu import AsmZpu, Zpu, ZpuStats
from repro.programs import crc8 as crc8_kernel
from repro.programs import dtree as dtree_kernel
from repro.programs.common import ARRAY_ELEMENTS, deterministic_values

#: Word addresses of benchmark data.
VAR0 = 0x0400            # scalar block (word-aligned)
ARR = 0x0440             # 16-word array


@dataclass
class ZpuKernel:
    """One assembled ZPU benchmark."""

    name: str
    code: bytes
    loader: Callable[[Zpu], None]
    reader: Callable[[Zpu], dict]

    @property
    def size_bytes(self) -> int:
        return len(self.code)

    def execute(self, max_steps: int = 2_000_000) -> tuple[ZpuStats, dict]:
        cpu = Zpu(self.code, memory_size=16384)
        self.loader(cpu)
        stats = cpu.run(max_steps)
        return stats, self.reader(cpu)


class _Z(AsmZpu):
    """AsmZpu plus variable-access conveniences."""

    def push_var(self, address: int) -> None:
        self.im(address)
        self.load()

    def pop_var(self, address: int) -> None:
        """Store top-of-stack to a variable (value already pushed)."""
        self.im(address)
        self.store()

    def set_const(self, address: int, value: int) -> None:
        self.im(value)
        self.pop_var(address)


def _poke_words(cpu: Zpu, address: int, values) -> None:
    for index, value in enumerate(values):
        cpu._store_word(address + 4 * index, value)


def _read_word(cpu: Zpu, address: int) -> int:
    return int.from_bytes(cpu.memory[address : address + 4], "big")


def mult8(a_value: int | None = None, b_value: int | None = None) -> ZpuKernel:
    """Shift-add multiply; product word at VAR0+8."""
    inputs = deterministic_values(seed=0xA8, count=2, bits=8)
    a_value = inputs[0] if a_value is None else a_value
    b_value = inputs[1] if b_value is None else b_value
    v_and, v_ier, v_prod, v_cnt = VAR0, VAR0 + 4, VAR0 + 8, VAR0 + 12

    z = _Z()
    z.set_const(v_prod, 0)
    z.set_const(v_cnt, 8)
    z.label("loop")
    z.push_var(v_ier)
    z.im(1)
    z.and_()
    z.neqbranch("do_add")
    z.branch("shift")
    z.label("do_add")
    z.push_var(v_prod)
    z.push_var(v_and)
    z.add()
    z.im(0xFF)
    z.and_()
    z.pop_var(v_prod)
    z.label("shift")
    z.push_var(v_ier)           # multiplier >>= 1
    z.im(1)
    z.lshiftright()
    z.pop_var(v_ier)
    z.push_var(v_and)           # multiplicand <<= 1 (mod 256)
    z.push_var(v_and)
    z.add()
    z.im(0xFF)
    z.and_()
    z.pop_var(v_and)
    z.push_var(v_cnt)           # count -= 1; loop while nonzero
    z.im(1)
    z.sub()
    z.pop_var(v_cnt)
    z.push_var(v_cnt)
    z.neqbranch("loop")
    z.halt()

    return ZpuKernel(
        name="mult",
        code=z.assemble(),
        loader=lambda cpu: _poke_words(cpu, VAR0, [a_value, b_value]),
        reader=lambda cpu: {"product": _read_word(cpu, v_prod)},
    )


def div8(dividend: int | None = None, divisor: int | None = None) -> ZpuKernel:
    """Restoring division; quotient at VAR0+8, remainder at VAR0+12."""
    dividend = 199 if dividend is None else dividend
    divisor = 13 if divisor is None else divisor
    v_dvd, v_dvs, v_q, v_r, v_cnt = VAR0, VAR0 + 4, VAR0 + 8, VAR0 + 12, VAR0 + 16

    z = _Z()
    z.set_const(v_q, 0)
    z.set_const(v_r, 0)
    z.set_const(v_cnt, 8)
    z.label("loop")
    # r = (r << 1) | ((dvd >> 7) & 1)
    z.push_var(v_r)
    z.push_var(v_r)
    z.add()
    z.push_var(v_dvd)
    z.im(7)
    z.lshiftright()
    z.im(1)
    z.and_()
    z.add()
    z.pop_var(v_r)
    # dvd = (dvd << 1) & 0xFF
    z.push_var(v_dvd)
    z.push_var(v_dvd)
    z.add()
    z.im(0xFF)
    z.and_()
    z.pop_var(v_dvd)
    # q <<= 1
    z.push_var(v_q)
    z.push_var(v_q)
    z.add()
    z.pop_var(v_q)
    # if not (r < dvs): r -= dvs; q += 1
    z.push_var(v_r)
    z.push_var(v_dvs)
    z.ulessthan()
    z.neqbranch("next")
    z.push_var(v_r)
    z.push_var(v_dvs)
    z.sub()
    z.pop_var(v_r)
    z.push_var(v_q)
    z.im(1)
    z.add()
    z.pop_var(v_q)
    z.label("next")
    z.push_var(v_cnt)
    z.im(1)
    z.sub()
    z.pop_var(v_cnt)
    z.push_var(v_cnt)
    z.neqbranch("loop")
    z.halt()

    return ZpuKernel(
        name="div",
        code=z.assemble(),
        loader=lambda cpu: _poke_words(cpu, VAR0, [dividend, divisor]),
        reader=lambda cpu: {
            "quotient": _read_word(cpu, v_q),
            "remainder": _read_word(cpu, v_r),
        },
    )


def insort(values: list[int] | None = None) -> ZpuKernel:
    """Insertion sort of 16 words at ARR (32-bit elements)."""
    values = (
        deterministic_values(seed=0x58, count=ARRAY_ELEMENTS, bits=8)
        if values is None
        else values
    )
    v_i, v_ptr = VAR0, VAR0 + 4  # ptr = byte address of arr[j]

    z = _Z()
    z.set_const(v_i, 1)
    z.label("outer")
    # ptr = ARR + 4*i
    z.push_var(v_i)
    z.push_var(v_i)
    z.add()
    z.push_var(v_i)
    z.push_var(v_i)
    z.add()
    z.add()                      # 4*i
    z.im(ARR)
    z.add()
    z.pop_var(v_ptr)
    z.label("inner")
    # if arr[j] >= arr[j-1]: placed
    z.push_var(v_ptr)            # &arr[j]
    z.load()
    z.push_var(v_ptr)
    z.im(4)
    z.sub()
    z.load()                     # arr[j-1]
    z.ulessthan()                # arr[j] < arr[j-1] ?
    z.neqbranch("swap")
    z.branch("placed")
    z.label("swap")
    # tmp = arr[j]; arr[j] = arr[j-1]; arr[j-1] = tmp
    z.push_var(v_ptr)
    z.load()                     # stack: arr[j]
    z.push_var(v_ptr)
    z.im(4)
    z.sub()
    z.load()                     # stack: arr[j], arr[j-1]
    z.push_var(v_ptr)
    z.store()                    # arr[j] = arr[j-1]; stack: arr[j]
    z.push_var(v_ptr)
    z.im(4)
    z.sub()
    z.store()                    # arr[j-1] = old arr[j]
    # ptr -= 4; continue while ptr > ARR
    z.push_var(v_ptr)
    z.im(4)
    z.sub()
    z.pop_var(v_ptr)
    z.push_var(v_ptr)
    z.im(ARR)
    z.sub()
    z.neqbranch("inner")
    z.label("placed")
    z.push_var(v_i)
    z.im(1)
    z.add()
    z.pop_var(v_i)
    z.push_var(v_i)
    z.im(ARRAY_ELEMENTS)
    z.ulessthan()
    z.neqbranch("outer")
    z.halt()

    return ZpuKernel(
        name="inSort",
        code=z.assemble(),
        loader=lambda cpu: _poke_words(cpu, ARR, values),
        reader=lambda cpu: {
            "sorted": [_read_word(cpu, ARR + 4 * k) for k in range(ARRAY_ELEMENTS)]
        },
    )


def intavg(values: list[int] | None = None) -> ZpuKernel:
    """Average of 16 words; result at VAR0+4."""
    values = (
        deterministic_values(seed=0xA9, count=ARRAY_ELEMENTS, bits=8)
        if values is None
        else values
    )
    v_ptr, v_avg, v_cnt = VAR0, VAR0 + 4, VAR0 + 8

    z = _Z()
    z.set_const(v_avg, 0)
    z.set_const(v_ptr, ARR)
    z.set_const(v_cnt, ARRAY_ELEMENTS)
    z.label("loop")
    z.push_var(v_avg)
    z.push_var(v_ptr)
    z.load()
    z.add()
    z.pop_var(v_avg)
    z.push_var(v_ptr)
    z.im(4)
    z.add()
    z.pop_var(v_ptr)
    z.push_var(v_cnt)
    z.im(1)
    z.sub()
    z.pop_var(v_cnt)
    z.push_var(v_cnt)
    z.neqbranch("loop")
    z.push_var(v_avg)
    z.im(4)
    z.lshiftright()
    z.pop_var(v_avg)
    z.halt()

    return ZpuKernel(
        name="intAvg",
        code=z.assemble(),
        loader=lambda cpu: _poke_words(cpu, ARR, values),
        reader=lambda cpu: {"avg": _read_word(cpu, v_avg)},
    )


def thold(values: list[int] | None = None, threshold: int | None = None) -> ZpuKernel:
    """Count of words >= threshold; count at VAR0+8."""
    values = (
        deterministic_values(seed=0x78, count=ARRAY_ELEMENTS, bits=8)
        if values is None
        else values
    )
    threshold = 0x80 if threshold is None else threshold
    v_thr, v_ptr, v_count, v_left = VAR0, VAR0 + 4, VAR0 + 8, VAR0 + 12

    z = _Z()
    z.set_const(v_count, 0)
    z.set_const(v_ptr, ARR)
    z.set_const(v_left, ARRAY_ELEMENTS)
    z.label("loop")
    z.push_var(v_ptr)
    z.load()
    z.push_var(v_thr)
    z.ulessthan()                # element < threshold ?
    z.neqbranch("skip")
    z.push_var(v_count)
    z.im(1)
    z.add()
    z.pop_var(v_count)
    z.label("skip")
    z.push_var(v_ptr)
    z.im(4)
    z.add()
    z.pop_var(v_ptr)
    z.push_var(v_left)
    z.im(1)
    z.sub()
    z.pop_var(v_left)
    z.push_var(v_left)
    z.neqbranch("loop")
    z.halt()

    return ZpuKernel(
        name="tHold",
        code=z.assemble(),
        loader=lambda cpu: (
            _poke_words(cpu, v_thr, [threshold]),
            _poke_words(cpu, ARR, values),
        ),
        reader=lambda cpu: {"count": _read_word(cpu, v_count)},
    )


def crc8_16(stream: list[int] | None = None) -> ZpuKernel:
    """CRC-8/ATM over 16 byte-valued words; crc at VAR0."""
    stream = crc8_kernel.default_inputs() if stream is None else stream
    v_crc, v_ptr, v_left, v_bits = VAR0, VAR0 + 4, VAR0 + 8, VAR0 + 12

    z = _Z()
    z.set_const(v_crc, 0)
    z.set_const(v_ptr, ARR)
    z.set_const(v_left, len(stream))
    z.label("byte")
    z.push_var(v_crc)
    z.push_var(v_ptr)
    z.load()
    z.xor()
    z.pop_var(v_crc)
    z.set_const(v_bits, 8)
    z.label("bit")
    # crc <<= 1 (9-bit intermediate), xor poly if bit 8 set
    z.push_var(v_crc)
    z.push_var(v_crc)
    z.add()
    z.pop_var(v_crc)
    z.push_var(v_crc)
    z.im(0x100)
    z.and_()
    z.neqbranch("poly")
    z.branch("no_poly")
    z.label("poly")
    z.push_var(v_crc)
    z.im(crc8_kernel.POLYNOMIAL | 0x100)
    z.xor()
    z.pop_var(v_crc)
    z.label("no_poly")
    z.push_var(v_bits)
    z.im(1)
    z.sub()
    z.pop_var(v_bits)
    z.push_var(v_bits)
    z.neqbranch("bit")
    z.push_var(v_ptr)
    z.im(4)
    z.add()
    z.pop_var(v_ptr)
    z.push_var(v_left)
    z.im(1)
    z.sub()
    z.pop_var(v_left)
    z.push_var(v_left)
    z.neqbranch("byte")
    z.halt()

    return ZpuKernel(
        name="crc8",
        code=z.assemble(),
        loader=lambda cpu: _poke_words(cpu, ARR, stream),
        reader=lambda cpu: {"crc": _read_word(cpu, v_crc) & 0xFF},
    )


def dtree(inputs: list[int] | None = None) -> ZpuKernel:
    """The deterministic 50-node decision tree; class at VAR0."""
    inputs = dtree_kernel.default_inputs(8) if inputs is None else inputs
    tree = dtree_kernel._build_tree(dtree_kernel.INTERNAL_NODES)
    v_result = VAR0

    z = _Z()

    def emit(node) -> None:
        if node.is_leaf:
            z.set_const(v_result, node.leaf_class)
            z.branch("end")
            return
        z.push_var(ARR + 4 * node.feature)
        z.im(node.threshold)
        z.ulessthan()            # input < threshold ?
        z.neqbranch(f"left_{node.index}")
        emit(node.right)
        z.label(f"left_{node.index}")
        emit(node.left)

    emit(tree)
    z.label("end")
    z.halt()

    return ZpuKernel(
        name="dTree",
        code=z.assemble(),
        loader=lambda cpu: _poke_words(cpu, ARR, inputs),
        reader=lambda cpu: {"result": _read_word(cpu, v_result)},
    )


def insort16(values: list[int] | None = None) -> ZpuKernel:
    """16-bit-data insertion sort: the ZPU's 32-bit word loop handles
    any element magnitude at identical cost; only the inputs change."""
    values = (
        deterministic_values(seed=0x59, count=ARRAY_ELEMENTS, bits=16)
        if values is None
        else values
    )
    return insort(values)


#: Builder registry for the aggregation layer.
ZPU_KERNELS: dict[str, Callable[..., ZpuKernel]] = {
    "mult": mult8,
    "div": div8,
    "inSort": insort,
    "inSort16": insort16,
    "intAvg": intavg,
    "tHold": thold,
    "crc8": crc8_16,
    "dTree": dtree,
}
