"""Structural cross-check of the published baseline characterization.

Given only a core's gate count and an estimated sequential fraction,
derive its printed area through the cell libraries using a generic
synthesized-logic cell mix, and compare against the published Table 4
area.  Agreement within tens of percent validates that the published
numbers and our cell libraries are mutually consistent -- i.e. that
TP-ISA cores and baselines are being compared in the same currency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.specs import BaselineSpec
from repro.pdk.cells import CellLibrary

#: Generic combinational cell mix of gate-level synthesized control
#: -heavy logic (fractions of combinational cells), drawn from the
#: histograms of our own generated cores.
COMBINATIONAL_MIX = {
    "INVX1": 0.22,
    "NAND2X1": 0.38,
    "NOR2X1": 0.12,
    "AND2X1": 0.10,
    "OR2X1": 0.10,
    "XOR2X1": 0.08,
}


@dataclass(frozen=True)
class StructuralReport:
    """Derived structural characteristics of one baseline core."""

    name: str
    technology: str
    derived_area: float
    published_area: float
    derived_energy_per_cycle: float

    @property
    def area_ratio(self) -> float:
        """Derived / published area (1.0 = perfect agreement)."""
        return self.derived_area / self.published_area


def average_combinational_area(library: CellLibrary) -> float:
    """Mix-weighted combinational cell area in m^2."""
    return sum(
        fraction * library.cell(name).area
        for name, fraction in COMBINATIONAL_MIX.items()
    )


def average_combinational_energy(library: CellLibrary) -> float:
    """Mix-weighted combinational switching energy in J."""
    return sum(
        fraction * library.cell(name).energy
        for name, fraction in COMBINATIONAL_MIX.items()
    )


def structural_report(
    spec: BaselineSpec, library: CellLibrary, activity: float = 0.88
) -> StructuralReport:
    """Derive area/energy for ``spec`` in ``library``'s technology."""
    technology = library.name
    point = spec.point(technology)
    dff_count = spec.dff_fraction * point.gate_count
    comb_count = point.gate_count - dff_count
    dff = library.cell("DFFX1")
    area = dff_count * dff.area + comb_count * average_combinational_area(library)
    energy = activity * (
        dff_count * dff.energy
        + comb_count * average_combinational_energy(library)
    )
    return StructuralReport(
        name=spec.name,
        technology=technology,
        derived_area=area,
        published_area=point.area,
        derived_energy_per_cycle=energy,
    )
