"""openMSP430 functional simulator and code builder.

Models the paper's 16-bit register-machine baseline at the
architectural level: 16 registers, the standard dual-operand /
single-operand / jump formats, MSP430 addressing modes (register,
indexed, absolute, indirect, auto-increment, immediate, with the
constant generator), and the documented per-mode word counts and cycle
counts -- so benchmark code sizes (Table 5) and cycle totals
(Section 8) follow the real ISA's cost model.

Instructions are interpreted as structured objects rather than binary
words; ``words`` on each instruction gives the encoded size, and the
program image size is ``2 x sum(words)`` bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AssemblerError, SimulationError

#: Register aliases.
PC, SP, SR, CG = 0, 1, 2, 3
R4, R5, R6, R7, R8, R9, R10, R11, R12, R13, R14, R15 = range(4, 16)

#: Immediates the constant generator provides for free.
CONSTANT_GENERATOR = {0, 1, 2, 4, 8, 0xFFFF}

MASK16 = 0xFFFF

# Status-register flag bits.
FLAG_C = 0x0001
FLAG_Z = 0x0002
FLAG_N = 0x0004
FLAG_V = 0x0100


class Mode(enum.Enum):
    """Addressing modes."""

    REG = "Rn"
    IDX = "x(Rn)"
    ABS = "&addr"
    IND = "@Rn"
    IND_AI = "@Rn+"
    IMM = "#imm"


@dataclass(frozen=True)
class Operand:
    """One MSP430 operand."""

    mode: Mode
    reg: int = 0
    value: int = 0

    @property
    def extension_words(self) -> int:
        """Extra instruction words this operand occupies."""
        if self.mode in (Mode.IDX, Mode.ABS):
            return 1
        if self.mode is Mode.IMM:
            return 0 if (self.value & MASK16) in CONSTANT_GENERATOR else 1
        return 0


def reg(n: int) -> Operand:
    """Register-direct operand."""
    return Operand(Mode.REG, reg=n)


def imm(value: int) -> Operand:
    """Immediate operand (constant generator aware)."""
    return Operand(Mode.IMM, value=value & MASK16)


def absolute(address: int) -> Operand:
    """Absolute-address operand (&addr)."""
    return Operand(Mode.ABS, value=address)


def indexed(base: int, offset: int) -> Operand:
    """Indexed operand x(Rn)."""
    return Operand(Mode.IDX, reg=base, value=offset)


def indirect(base: int, autoincrement: bool = False) -> Operand:
    """Indirect @Rn (optionally auto-increment @Rn+)."""
    return Operand(Mode.IND_AI if autoincrement else Mode.IND, reg=base)


TWO_OPERAND = {"MOV", "ADD", "ADDC", "SUB", "SUBC", "CMP", "AND", "XOR", "BIS", "BIC", "BIT"}
ONE_OPERAND = {"RRA", "RRC", "SWPB", "SXT", "PUSH"}
JUMPS = {"JMP", "JNZ", "JZ", "JNC", "JC", "JN", "JGE", "JL"}


@dataclass
class Instr:
    """One instruction (two-operand, one-operand, or jump)."""

    op: str
    src: Operand | None = None
    dst: Operand | None = None
    target: str | None = None

    @property
    def words(self) -> int:
        if self.op in JUMPS:
            return 1
        words = 1
        if self.src is not None:
            words += self.src.extension_words
        if self.dst is not None and self.op in TWO_OPERAND:
            words += self.dst.extension_words
        return words

    @property
    def cycles(self) -> int:
        """MSP430 user's-guide cycle counts (word operations)."""
        if self.op == "HALT":
            return 2  # stands in for the final idle-loop jump
        if self.op in JUMPS:
            return 2
        if self.op in ONE_OPERAND:
            base = {"PUSH": 3}.get(self.op, 1)
            if self.dst.mode is not Mode.REG:
                base += 3
            return base
        src_cost = {
            Mode.REG: 0,
            Mode.IMM: 0 if (self.src.value in CONSTANT_GENERATOR) else 1,
            Mode.IND: 1,
            Mode.IND_AI: 1,
            Mode.IDX: 2,
            Mode.ABS: 2,
        }[self.src.mode]
        dst_cost = {
            Mode.REG: 0,
            Mode.IDX: 3,
            Mode.ABS: 3,
        }.get(self.dst.mode)
        if dst_cost is None:
            raise SimulationError(f"{self.op}: invalid destination mode {self.dst.mode}")
        return 1 + src_cost + dst_cost


@dataclass
class MspStats:
    instructions: int = 0
    cycles: int = 0
    memory_reads: int = 0
    memory_writes: int = 0


class Msp430:
    """openMSP430-subset interpreter over structured instructions."""

    def __init__(self, program: list[Instr], labels: dict[str, int], memory_size: int = 4096) -> None:
        self.program = program
        self.labels = labels
        self.memory = bytearray(memory_size)
        self.regs = [0] * 16
        self.regs[SP] = memory_size - 2
        self.flags = 0
        self.index = 0  # instruction index (architectural PC abstracted)
        self.halted = False
        self.stats = MspStats()

    # -- memory --------------------------------------------------------------

    def read_word(self, address: int) -> int:
        self.stats.memory_reads += 1
        address &= ~1
        return self.memory[address] | (self.memory[address + 1] << 8)

    def write_word(self, address: int, value: int) -> None:
        self.stats.memory_writes += 1
        address &= ~1
        self.memory[address] = value & 0xFF
        self.memory[address + 1] = (value >> 8) & 0xFF

    # -- operands ------------------------------------------------------------

    def _load(self, operand: Operand) -> int:
        if operand.mode is Mode.REG:
            return self.regs[operand.reg]
        if operand.mode is Mode.IMM:
            return operand.value
        if operand.mode is Mode.ABS:
            return self.read_word(operand.value)
        if operand.mode is Mode.IDX:
            return self.read_word(self.regs[operand.reg] + operand.value)
        value = self.read_word(self.regs[operand.reg])
        if operand.mode is Mode.IND_AI:
            self.regs[operand.reg] = (self.regs[operand.reg] + 2) & MASK16
        return value

    def _store(self, operand: Operand, value: int) -> None:
        value &= MASK16
        if operand.mode is Mode.REG:
            self.regs[operand.reg] = value
        elif operand.mode is Mode.ABS:
            self.write_word(operand.value, value)
        elif operand.mode is Mode.IDX:
            self.write_word(self.regs[operand.reg] + operand.value, value)
        else:
            raise SimulationError(f"invalid store mode {operand.mode}")

    # -- flags ----------------------------------------------------------------

    def _set_nz(self, value: int) -> None:
        self.flags &= ~(FLAG_N | FLAG_Z)
        if value & 0x8000:
            self.flags |= FLAG_N
        if value == 0:
            self.flags |= FLAG_Z

    def _set_c(self, condition: bool) -> None:
        self.flags = (self.flags | FLAG_C) if condition else (self.flags & ~FLAG_C)

    def _set_v(self, condition: bool) -> None:
        self.flags = (self.flags | FLAG_V) if condition else (self.flags & ~FLAG_V)

    # -- execution ---------------------------------------------------------------

    def step(self) -> None:  # noqa: C901 - instruction dispatch
        if self.halted:
            return
        if self.index >= len(self.program):
            self.halted = True
            return
        instr = self.program[self.index]
        self.stats.instructions += 1
        self.stats.cycles += instr.cycles
        next_index = self.index + 1
        op = instr.op

        if op in JUMPS:
            if self._jump_taken(op):
                next_index = self.labels[instr.target]
        elif op in ONE_OPERAND:
            self._one_operand(op, instr.dst)
        elif op in TWO_OPERAND:
            self._two_operand(op, instr.src, instr.dst)
        elif op == "HALT":
            self.halted = True
        else:
            raise SimulationError(f"unimplemented MSP430 op {op}")
        self.index = next_index

    def _jump_taken(self, op: str) -> bool:
        c = bool(self.flags & FLAG_C)
        z = bool(self.flags & FLAG_Z)
        n = bool(self.flags & FLAG_N)
        v = bool(self.flags & FLAG_V)
        return {
            "JMP": True,
            "JZ": z,
            "JNZ": not z,
            "JC": c,
            "JNC": not c,
            "JN": n,
            "JGE": n == v,
            "JL": n != v,
        }[op]

    def _two_operand(self, op: str, src: Operand, dst: Operand) -> None:
        a = self._load(src)
        if op == "MOV":
            self._store(dst, a)
            return
        b = self._load(dst)
        if op in ("ADD", "ADDC"):
            carry = (self.flags & FLAG_C) if op == "ADDC" else 0
            total = b + a + (1 if carry else 0)
            result = total & MASK16
            self._set_nz(result)
            self._set_c(total > MASK16)
            self._set_v(bool((~(a ^ b)) & (a ^ result) & 0x8000))
            self._store(dst, result)
        elif op in ("SUB", "SUBC", "CMP"):
            carry_in = 1 if (op != "SUBC" or self.flags & FLAG_C) else 0
            total = b + ((~a) & MASK16) + carry_in
            result = total & MASK16
            self._set_nz(result)
            self._set_c(total > MASK16)
            self._set_v(bool((a ^ b) & (b ^ result) & 0x8000))
            if op != "CMP":
                self._store(dst, result)
        elif op in ("AND", "BIT"):
            result = a & b
            self._set_nz(result)
            self._set_c(result != 0)
            self._set_v(False)
            if op == "AND":
                self._store(dst, result)
        elif op == "XOR":
            result = a ^ b
            self._set_nz(result)
            self._set_c(result != 0)
            self._store(dst, result)
        elif op == "BIS":
            self._store(dst, a | b)
        elif op == "BIC":
            self._store(dst, b & ~a & MASK16)

    def _one_operand(self, op: str, dst: Operand) -> None:
        value = self._load(dst)
        if op == "RRA":
            self._set_c(bool(value & 1))
            result = (value >> 1) | (value & 0x8000)
            self._set_nz(result)
            self._store(dst, result)
        elif op == "RRC":
            carry_in = 0x8000 if self.flags & FLAG_C else 0
            self._set_c(bool(value & 1))
            result = (value >> 1) | carry_in
            self._set_nz(result)
            self._store(dst, result)
        elif op == "SWPB":
            self._store(dst, ((value << 8) | (value >> 8)) & MASK16)
        elif op == "SXT":
            result = value | (0xFF00 if value & 0x80 else 0)
            result &= MASK16
            self._set_nz(result)
            self._store(dst, result)
        elif op == "PUSH":
            self.regs[SP] = (self.regs[SP] - 2) & MASK16
            self.write_word(self.regs[SP], value)

    def run(self, max_steps: int = 2_000_000) -> MspStats:
        for _ in range(max_steps):
            if self.halted:
                return self.stats
            self.step()
        raise SimulationError("MSP430 program did not halt")


# -- code builder -------------------------------------------------------------------


class AsmMsp430:
    """MSP430 instruction-list builder with labels."""

    def __init__(self) -> None:
        self.program: list[Instr] = []
        self.labels: dict[str, int] = {}

    def label(self, name: str) -> None:
        if name in self.labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self.labels[name] = len(self.program)

    def emit(self, op: str, src: Operand | None = None, dst: Operand | None = None, target: str | None = None) -> None:
        self.program.append(Instr(op, src=src, dst=dst, target=target))

    def two(self, op: str, src: Operand, dst: Operand) -> None:
        self.emit(op, src=src, dst=dst)

    def mov(self, src: Operand, dst: Operand) -> None:
        self.two("MOV", src, dst)

    def add(self, src: Operand, dst: Operand) -> None:
        self.two("ADD", src, dst)

    def addc(self, src: Operand, dst: Operand) -> None:
        self.two("ADDC", src, dst)

    def sub(self, src: Operand, dst: Operand) -> None:
        self.two("SUB", src, dst)

    def cmp(self, src: Operand, dst: Operand) -> None:
        self.two("CMP", src, dst)

    def and_(self, src: Operand, dst: Operand) -> None:
        self.two("AND", src, dst)

    def xor(self, src: Operand, dst: Operand) -> None:
        self.two("XOR", src, dst)

    def bis(self, src: Operand, dst: Operand) -> None:
        self.two("BIS", src, dst)

    def one(self, op: str, dst: Operand) -> None:
        self.emit(op, dst=dst)

    def rra(self, dst: Operand) -> None:
        self.one("RRA", dst)

    def rrc(self, dst: Operand) -> None:
        self.one("RRC", dst)

    def jump(self, op: str, target: str) -> None:
        self.emit(op, target=target)

    def jmp(self, target: str) -> None:
        self.jump("JMP", target)

    def jnz(self, target: str) -> None:
        self.jump("JNZ", target)

    def jz(self, target: str) -> None:
        self.jump("JZ", target)

    def jc(self, target: str) -> None:
        self.jump("JC", target)

    def jnc(self, target: str) -> None:
        self.jump("JNC", target)

    def halt(self) -> None:
        self.emit("HALT")

    def finish(self) -> tuple[list[Instr], dict[str, int]]:
        for instr in self.program:
            if instr.target is not None and instr.target not in self.labels:
                raise AssemblerError(f"undefined label {instr.target!r}")
        return self.program, dict(self.labels)

    @property
    def size_bytes(self) -> int:
        """Encoded program size (2 bytes per instruction word).

        HALT stands in for the idle-loop jump the real firmware ends
        with and is counted as one word.
        """
        return 2 * sum(
            1 if instr.op == "HALT" else instr.words for instr in self.program
        )
