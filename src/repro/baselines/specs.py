"""Published Table 4 characterization of the baseline cores.

These numbers are the paper's synthesis results in the two printed
technologies and are treated as *inputs* to the reproduction (we have
no Design Compiler and no access to the exact RTL revisions).  The
structural model in :mod:`repro.baselines.model` cross-checks them
against the cell libraries; everything application-level (Table 5,
Figures 4-5, Section 8) combines them with dynamic counts from our own
instruction-set simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import cm2, mW


@dataclass(frozen=True)
class TechnologyPoint:
    """One core's synthesis result in one technology."""

    fmax: float
    gate_count: int
    area: float
    power: float


@dataclass(frozen=True)
class BaselineSpec:
    """One Table 4 row.

    Attributes:
        name: Core name.
        datawidth: Architectural data width in bits.
        alu_width: Physical ALU width in bits.
        isa: ISA family description.
        cpi_min / cpi_max: Published cycles-per-instruction range.
        egfet / cnt: Per-technology synthesis results.
        dff_fraction: Estimated sequential-cell fraction of the gate
            count (register inventory / microcode state; documented
            estimate used by the structural cross-check).
    """

    name: str
    datawidth: int
    alu_width: int
    isa: str
    cpi_min: int
    cpi_max: int
    egfet: TechnologyPoint
    cnt: TechnologyPoint
    dff_fraction: float

    def point(self, technology: str) -> TechnologyPoint:
        if technology == "EGFET":
            return self.egfet
        if technology in ("CNT", "CNT-TFT"):
            return self.cnt
        raise KeyError(f"unknown technology {technology!r}")


#: Table 4 verbatim.
BASELINE_SPECS: dict[str, BaselineSpec] = {
    "openMSP430": BaselineSpec(
        name="openMSP430",
        datawidth=16,
        alu_width=16,
        isa="Register based",
        cpi_min=1,
        cpi_max=6,
        egfet=TechnologyPoint(4.07, 12101, cm2(56.38), mW(124.4)),
        cnt=TechnologyPoint(15074, 14098, cm2(0.69), mW(1335.8)),
        dff_fraction=0.13,
    ),
    "Z80": BaselineSpec(
        name="Z80",
        datawidth=8,
        alu_width=8,
        isa="Enhanced Intel8080",
        cpi_min=3,
        cpi_max=23,
        egfet=TechnologyPoint(7.18, 5263, cm2(25.28), mW(76.25)),
        cnt=TechnologyPoint(26064, 7226, cm2(0.34), mW(1204)),
        dff_fraction=0.12,
    ),
    "light8080": BaselineSpec(
        name="light8080",
        datawidth=8,
        alu_width=8,
        isa="Intel8080",
        cpi_min=5,
        cpi_max=30,
        egfet=TechnologyPoint(17.39, 1948, cm2(11.15), mW(41.7)),
        cnt=TechnologyPoint(57238, 3020, cm2(0.17), mW(1517)),
        dff_fraction=0.13,
    ),
    "ZPU_small": BaselineSpec(
        name="ZPU_small",
        datawidth=32,
        alu_width=8,
        isa="Stack-based",
        cpi_min=4,
        cpi_max=4,
        egfet=TechnologyPoint(25.45, 2984, cm2(15.82), mW(66.06)),
        cnt=TechnologyPoint(43442, 3782, cm2(0.21), mW(1596)),
        dff_fraction=0.14,
    ),
}
